"""Recursive-descent parser for the PHP subset used by the taint analyzer.

The grammar follows PHP 5/7 precedence.  The parser is deliberately lenient
in a few places where real-world PHP is sloppy (e.g. ``declare(strict_types=1)``
parses as a call with an assignment argument) because the taint analyzer only
cares about data flow, not full language validation.

Entry point: :func:`parse`.
"""

from __future__ import annotations

import re

from repro.exceptions import PhpSyntaxError
from repro.php import ast_nodes as ast
from repro.php.lexer import tokenize
from repro.php.tokens import Token, TokenType as T

# assignment token -> Assign.op text
_ASSIGN_OPS = {
    T.ASSIGN: "=",
    T.PLUS_ASSIGN: "+=",
    T.MINUS_ASSIGN: "-=",
    T.MUL_ASSIGN: "*=",
    T.DIV_ASSIGN: "/=",
    T.MOD_ASSIGN: "%=",
    T.CONCAT_ASSIGN: ".=",
    T.POW_ASSIGN: "**=",
    T.AND_ASSIGN: "&=",
    T.OR_ASSIGN: "|=",
    T.XOR_ASSIGN: "^=",
    T.SHL_ASSIGN: "<<=",
    T.SHR_ASSIGN: ">>=",
    T.COALESCE_ASSIGN: "??=",
}

# binary precedence levels, low to high; each entry: {token: op-text}
_BINARY_LEVELS: list[dict[T, str]] = [
    {T.BOOL_OR: "||"},
    {T.BOOL_AND: "&&"},
    {T.PIPE: "|"},
    {T.CARET: "^"},
    {T.AMP: "&"},
    {T.EQ: "==", T.NEQ: "!=", T.IDENTICAL: "===",
     T.NOT_IDENTICAL: "!=="},
    {T.LT: "<", T.GT: ">", T.LE: "<=", T.GE: ">=", T.SPACESHIP: "<=>"},
    {T.SHL: "<<", T.SHR: ">>"},
    {T.PLUS: "+", T.MINUS: "-", T.DOT: "."},
    {T.MUL: "*", T.DIV: "/", T.MOD: "%"},
]

# flattened for precedence climbing: token -> (level, op-text)
_BINARY_PREC: dict[T, tuple[int, str]] = {
    tok: (level, op)
    for level, ops in enumerate(_BINARY_LEVELS)
    for tok, op in ops.items()
}

# every KW_* token type, precomputed so keyword-as-name checks avoid
# string inspection of the enum member name
_KEYWORD_TYPES = frozenset(t for t in T if t.name.startswith("KW_"))

_MAGIC_CONSTANTS = {
    "__file__", "__line__", "__dir__", "__function__", "__class__",
    "__method__", "__namespace__", "__trait__",
}

_DQ_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "v": "\v", "f": "\f", "e": "\x1b",
    "\\": "\\", "$": "$", '"': '"', "`": "`",
}


class Parser:
    """Parses a token stream into a :class:`repro.php.ast_nodes.Program`."""

    #: recovery gives up after this many damaged statements in one file
    MAX_WARNINGS = 200

    def __init__(self, tokens: list[Token], filename: str = "<source>",
                 recover: bool = False) -> None:
        self.tokens = tokens
        self.filename = filename
        self.pos = 0
        self.recover = recover
        self.warnings: list[PhpSyntaxError] = []

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        if offset:
            idx = min(self.pos + offset, len(self.tokens) - 1)
            return self.tokens[idx]
        # the cursor never passes the trailing EOF token
        return self.tokens[self.pos]

    def _at(self, *types: T) -> bool:
        return self.tokens[self.pos].type in types

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not T.EOF:
            self.pos += 1
        return tok

    def _accept(self, *types: T) -> Token | None:
        if self._at(*types):
            return self._advance()
        return None

    def _expect(self, type_: T, what: str | None = None) -> Token:
        tok = self._peek()
        if tok.type is not type_:
            expected = what or type_.value
            raise PhpSyntaxError(
                f"expected {expected}, found {tok.type.value!r} ({tok.value!r})",
                tok.line, tok.col, self.filename)
        return self._advance()

    def _error(self, message: str) -> PhpSyntaxError:
        tok = self._peek()
        return PhpSyntaxError(message, tok.line, tok.col, self.filename)

    # ------------------------------------------------------------------
    # program / statements
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        body: list[ast.Node] = []
        first = self._peek()
        while not self._at(T.EOF):
            stmt = (self._parse_statement_recovering()
                    if self.recover else self._parse_statement())
            if stmt is not None:
                body.append(stmt)
        return ast.Program(body, line=first.line, col=first.col)

    def _parse_statement_list(self, *stop: T) -> list[ast.Node]:
        body: list[ast.Node] = []
        while not self._at(T.EOF, *stop):
            stmt = (self._parse_statement_recovering(stop)
                    if self.recover else self._parse_statement())
            if stmt is not None:
                body.append(stmt)
        return body

    def _parse_statement_recovering(
            self, stop: tuple[T, ...] = ()) -> ast.Node | None:
        """One statement; on a syntax error, record it and resynchronize.

        Damaged statements become warnings instead of killing the whole
        file: we skip forward to the next plausible statement boundary
        (``;``, a balanced ``}``, a close tag or a *stop* token) and keep
        going, guaranteeing at least one token of progress per attempt.
        """
        start = self.pos
        try:
            return self._parse_statement()
        except PhpSyntaxError as exc:
            self.warnings.append(exc)
            if len(self.warnings) > self.MAX_WARNINGS:
                raise  # the file is hopeless; report it as a parse error
            self._synchronize(stop)
            if self.pos == start and not self._at(T.EOF, *stop):
                self._advance()
            return None

    def _synchronize(self, stop: tuple[T, ...]) -> None:
        """Skip tokens until a likely statement boundary.

        Consumes through the next ``;``, but stops *before* close tags,
        stray HTML, ``}``, EOF and the caller's *stop* tokens so the
        enclosing construct can resume normally.  A truly stray ``}`` at
        the top level is swallowed (there is nothing for it to close).
        """
        while not self._at(T.EOF):
            tt = self._peek().type
            if tt is T.SEMI:
                self._advance()
                return
            if tt in stop or tt in (T.CLOSE_TAG, T.OPEN_TAG, T.INLINE_HTML):
                return
            if tt is T.RBRACE:
                if not stop:
                    self._advance()  # stray closing brace at top level
                return
            self._advance()

    def _parse_block_or_single(self) -> list[ast.Node]:
        """Parse ``{ ... }`` or a single statement, returning a list."""
        if self._accept(T.LBRACE):
            body = self._parse_statement_list(T.RBRACE)
            self._expect(T.RBRACE)
            return body
        stmt = self._parse_statement()
        return [stmt] if stmt is not None else []

    def _parse_statement(self) -> ast.Node | None:  # noqa: C901
        tok = self._peek()
        tt = tok.type

        if tt is T.INLINE_HTML:
            self._advance()
            return ast.InlineHTML(tok.value, line=tok.line, col=tok.col)
        if tt in (T.OPEN_TAG, T.CLOSE_TAG):
            self._advance()
            return None
        if tt is T.SEMI:
            self._advance()
            return None
        if tt is T.LBRACE:
            self._advance()
            body = self._parse_statement_list(T.RBRACE)
            self._expect(T.RBRACE)
            return ast.Block(body, line=tok.line, col=tok.col)

        if tt is T.KW_IF:
            return self._parse_if()
        if tt is T.KW_WHILE:
            return self._parse_while()
        if tt is T.KW_DO:
            return self._parse_do_while()
        if tt is T.KW_FOR:
            return self._parse_for()
        if tt is T.KW_FOREACH:
            return self._parse_foreach()
        if tt is T.KW_SWITCH:
            return self._parse_switch()
        if tt is T.KW_BREAK or tt is T.KW_CONTINUE:
            self._advance()
            level = 1
            num = self._accept(T.INT)
            if num:
                level = int(num.value, 0)
            self._expect_semi()
            cls = ast.Break if tt is T.KW_BREAK else ast.Continue
            return cls(level, line=tok.line, col=tok.col)
        if tt is T.KW_RETURN:
            self._advance()
            expr = None
            if not self._at(T.SEMI, T.CLOSE_TAG, T.EOF):
                expr = self.parse_expression()
            self._expect_semi()
            return ast.Return(expr, line=tok.line, col=tok.col)
        if tt is T.KW_ECHO:
            self._advance()
            exprs = [self.parse_expression()]
            while self._accept(T.COMMA):
                exprs.append(self.parse_expression())
            self._expect_semi()
            return ast.Echo(exprs, line=tok.line, col=tok.col)
        if tt is T.KW_GLOBAL:
            self._advance()
            names = [self._expect(T.VARIABLE).value]
            while self._accept(T.COMMA):
                names.append(self._expect(T.VARIABLE).value)
            self._expect_semi()
            return ast.Global(names, line=tok.line, col=tok.col)
        if tt is T.KW_STATIC and self._peek(1).type is T.VARIABLE:
            return self._parse_static_vars()
        if tt is T.KW_UNSET:
            self._advance()
            self._expect(T.LPAREN)
            vars_: list[ast.Node] = [self.parse_expression()]
            while self._accept(T.COMMA):
                vars_.append(self.parse_expression())
            self._expect(T.RPAREN)
            self._expect_semi()
            return ast.Unset(vars_, line=tok.line, col=tok.col)
        if tt is T.KW_THROW:
            self._advance()
            expr = self.parse_expression()
            self._expect_semi()
            return ast.Throw(expr, line=tok.line, col=tok.col)
        if tt is T.KW_TRY:
            return self._parse_try()
        if tt is T.KW_FUNCTION and self._peek(1).type in (T.IDENT, T.AMP):
            # "function &name" or "function name" is a declaration;
            # "function (" is a closure expression.
            nxt = self._peek(1)
            if nxt.type is T.IDENT or (
                    nxt.type is T.AMP and self._peek(2).type is T.IDENT):
                return self._parse_function_decl()
        if tt in (T.KW_CLASS, T.KW_INTERFACE, T.KW_TRAIT):
            return self._parse_class_decl([])
        if tt in (T.KW_ABSTRACT, T.KW_FINAL):
            modifiers = []
            while self._at(T.KW_ABSTRACT, T.KW_FINAL):
                modifiers.append(self._advance().value.lower())
            return self._parse_class_decl(modifiers)
        if tt is T.KW_NAMESPACE:
            return self._parse_namespace()
        if tt is T.KW_USE:
            return self._parse_use()
        if tt is T.KW_CONST:
            self._advance()
            consts: list[tuple[str, ast.Node]] = []
            while True:
                name = self._expect(T.IDENT).value
                self._expect(T.ASSIGN)
                consts.append((name, self.parse_expression()))
                if not self._accept(T.COMMA):
                    break
            self._expect_semi()
            return ast.ConstStatement(consts, line=tok.line, col=tok.col)

        if tt is T.IDENT and tok.value.lower() == "goto" \
                and self._peek(1).type is T.IDENT:
            self._advance()
            label = self._advance().value
            self._expect_semi()
            return ast.Goto(label, line=tok.line, col=tok.col)
        if tt is T.IDENT and self._peek(1).type is T.COLON:
            # "label:" goto target (":" after a bare name can be nothing
            # else at statement level — "::" lexes as one token)
            self._advance()
            self._advance()
            return ast.Label(tok.value, line=tok.line, col=tok.col)

        # expression statement
        expr = self.parse_expression()
        self._expect_semi()
        return ast.ExpressionStatement(expr, line=tok.line, col=tok.col)

    def _expect_semi(self) -> None:
        """Consume a statement terminator (``;`` or an implicit one)."""
        if self._accept(T.SEMI):
            return
        # a close tag or EOF also terminates a statement in PHP
        if self._at(T.CLOSE_TAG, T.EOF):
            return
        raise self._error(
            f"expected ';', found {self._peek().type.value!r}")

    # ------------------------------------------------------------------
    # control flow statements
    # ------------------------------------------------------------------
    def _parse_if(self) -> ast.If:
        tok = self._expect(T.KW_IF)
        self._expect(T.LPAREN)
        cond = self.parse_expression()
        self._expect(T.RPAREN)
        if self._accept(T.COLON):  # alternative syntax
            then = self._parse_statement_list(
                T.KW_ELSEIF, T.KW_ELSE, T.KW_ENDIF)
            elifs: list[tuple[ast.Node, list[ast.Node]]] = []
            otherwise: list[ast.Node] | None = None
            while self._at(T.KW_ELSEIF):
                self._advance()
                self._expect(T.LPAREN)
                econd = self.parse_expression()
                self._expect(T.RPAREN)
                self._expect(T.COLON)
                ebody = self._parse_statement_list(
                    T.KW_ELSEIF, T.KW_ELSE, T.KW_ENDIF)
                elifs.append((econd, ebody))
            if self._accept(T.KW_ELSE):
                self._expect(T.COLON)
                otherwise = self._parse_statement_list(T.KW_ENDIF)
            self._expect(T.KW_ENDIF)
            self._expect_semi()
            return ast.If(cond, then, elifs, otherwise, line=tok.line, col=tok.col)

        then = self._parse_block_or_single()
        elifs = []
        otherwise = None
        while True:
            if self._at(T.KW_ELSEIF):
                self._advance()
                self._expect(T.LPAREN)
                econd = self.parse_expression()
                self._expect(T.RPAREN)
                elifs.append((econd, self._parse_block_or_single()))
            elif self._at(T.KW_ELSE) and self._peek(1).type is T.KW_IF:
                self._advance()
                self._advance()
                self._expect(T.LPAREN)
                econd = self.parse_expression()
                self._expect(T.RPAREN)
                elifs.append((econd, self._parse_block_or_single()))
            elif self._at(T.KW_ELSE):
                self._advance()
                otherwise = self._parse_block_or_single()
                break
            else:
                break
        return ast.If(cond, then, elifs, otherwise, line=tok.line, col=tok.col)

    def _parse_while(self) -> ast.While:
        tok = self._expect(T.KW_WHILE)
        self._expect(T.LPAREN)
        cond = self.parse_expression()
        self._expect(T.RPAREN)
        if self._accept(T.COLON):
            body = self._parse_statement_list(T.KW_ENDWHILE)
            self._expect(T.KW_ENDWHILE)
            self._expect_semi()
        else:
            body = self._parse_block_or_single()
        return ast.While(cond, body, line=tok.line, col=tok.col)

    def _parse_do_while(self) -> ast.DoWhile:
        tok = self._expect(T.KW_DO)
        body = self._parse_block_or_single()
        self._expect(T.KW_WHILE)
        self._expect(T.LPAREN)
        cond = self.parse_expression()
        self._expect(T.RPAREN)
        self._expect_semi()
        return ast.DoWhile(body, cond, line=tok.line, col=tok.col)

    def _parse_for(self) -> ast.For:
        tok = self._expect(T.KW_FOR)
        self._expect(T.LPAREN)

        def exprs_until(stop: T) -> list[ast.Node]:
            out: list[ast.Node] = []
            if not self._at(stop):
                out.append(self.parse_expression())
                while self._accept(T.COMMA):
                    out.append(self.parse_expression())
            return out

        init = exprs_until(T.SEMI)
        self._expect(T.SEMI)
        cond = exprs_until(T.SEMI)
        self._expect(T.SEMI)
        step = exprs_until(T.RPAREN)
        self._expect(T.RPAREN)
        if self._accept(T.COLON):
            body = self._parse_statement_list(T.KW_ENDFOR)
            self._expect(T.KW_ENDFOR)
            self._expect_semi()
        else:
            body = self._parse_block_or_single()
        return ast.For(init, cond, step, body, line=tok.line, col=tok.col)

    def _parse_foreach(self) -> ast.Foreach:
        tok = self._expect(T.KW_FOREACH)
        self._expect(T.LPAREN)
        subject = self.parse_expression()
        self._expect(T.KW_AS)
        by_ref = bool(self._accept(T.AMP))
        first = self.parse_expression()
        key_var: ast.Node | None = None
        value_var = first
        if self._accept(T.DOUBLE_ARROW):
            key_var = first
            by_ref = bool(self._accept(T.AMP))
            value_var = self.parse_expression()
        self._expect(T.RPAREN)
        if self._accept(T.COLON):
            body = self._parse_statement_list(T.KW_ENDFOREACH)
            self._expect(T.KW_ENDFOREACH)
            self._expect_semi()
        else:
            body = self._parse_block_or_single()
        return ast.Foreach(subject, key_var, value_var, by_ref, body,
                           line=tok.line, col=tok.col)

    def _parse_switch(self) -> ast.Switch:
        tok = self._expect(T.KW_SWITCH)
        self._expect(T.LPAREN)
        subject = self.parse_expression()
        self._expect(T.RPAREN)
        alt = False
        if self._accept(T.COLON):
            alt = True
        else:
            self._expect(T.LBRACE)
        cases: list[ast.SwitchCase] = []
        end = (T.KW_ENDSWITCH,) if alt else (T.RBRACE,)
        while not self._at(T.EOF, *end):
            if self._at(T.CLOSE_TAG, T.OPEN_TAG, T.INLINE_HTML):
                # "?> ... <?php" between the switch brace and its cases
                self._advance()
                continue
            ctok = self._peek()
            if self._accept(T.KW_CASE):
                test: ast.Node | None = self.parse_expression()
            elif self._accept(T.KW_DEFAULT):
                test = None
            else:
                raise self._error("expected 'case' or 'default' in switch")
            if not self._accept(T.COLON):
                self._expect(T.SEMI)  # "case 1;" legacy form
            body = self._parse_statement_list(
                T.KW_CASE, T.KW_DEFAULT, *end)
            cases.append(ast.SwitchCase(test, body, line=ctok.line, col=ctok.col))
        if alt:
            self._expect(T.KW_ENDSWITCH)
            self._expect_semi()
        else:
            self._expect(T.RBRACE)
        return ast.Switch(subject, cases, line=tok.line, col=tok.col)

    def _parse_try(self) -> ast.Try:
        tok = self._expect(T.KW_TRY)
        self._expect(T.LBRACE)
        body = self._parse_statement_list(T.RBRACE)
        self._expect(T.RBRACE)
        catches: list[ast.CatchClause] = []
        while self._at(T.KW_CATCH):
            ctok = self._advance()
            self._expect(T.LPAREN)
            types = [self._parse_qualified_name()]
            while self._accept(T.PIPE):
                types.append(self._parse_qualified_name())
            var_tok = self._accept(T.VARIABLE)
            self._expect(T.RPAREN)
            self._expect(T.LBRACE)
            cbody = self._parse_statement_list(T.RBRACE)
            self._expect(T.RBRACE)
            catches.append(ast.CatchClause(
                types, var_tok.value if var_tok else None, cbody,
                line=ctok.line, col=ctok.col))
        finally_body: list[ast.Node] | None = None
        if self._accept(T.KW_FINALLY):
            self._expect(T.LBRACE)
            finally_body = self._parse_statement_list(T.RBRACE)
            self._expect(T.RBRACE)
        return ast.Try(body, catches, finally_body, line=tok.line, col=tok.col)

    def _parse_static_vars(self) -> ast.StaticVarDecl:
        tok = self._expect(T.KW_STATIC)
        vars_: list[tuple[str, ast.Node | None]] = []
        while True:
            name = self._expect(T.VARIABLE).value
            default = None
            if self._accept(T.ASSIGN):
                default = self.parse_expression()
            vars_.append((name, default))
            if not self._accept(T.COMMA):
                break
        self._expect_semi()
        return ast.StaticVarDecl(vars_, line=tok.line, col=tok.col)

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def _parse_qualified_name(self) -> str:
        """Parse a possibly-namespaced name: ``\\Foo\\Bar`` or ``Bar``."""
        parts: list[str] = []
        leading = bool(self._accept(T.BACKSLASH))
        parts.append(self._expect_name())
        while self._at(T.BACKSLASH) and self._peek(1).type is T.IDENT:
            self._advance()
            parts.append(self._expect(T.IDENT).value)
        name = "\\".join(parts)
        return ("\\" + name) if leading else name

    def _expect_name(self) -> str:
        """Accept an identifier, allowing (semi-)keywords used as names."""
        tok = self._peek()
        if tok.type is T.IDENT:
            return self._advance().value
        # PHP allows many keywords as method/const names
        if tok.type in _KEYWORD_TYPES:
            return self._advance().value
        raise self._error(
            f"expected name, found {tok.type.value!r}")

    def _parse_type_hint(self) -> str | None:
        """Parse an optional parameter/return type hint."""
        if self._at(T.QUESTION) and self._peek(1).type in (
                T.IDENT, T.KW_ARRAY, T.KW_STATIC, T.BACKSLASH):
            self._advance()
            return "?" + (self._parse_type_hint() or "")
        if self._at(T.KW_ARRAY):
            self._advance()
            return "array"
        if self._at(T.KW_STATIC):
            self._advance()
            return "static"
        if self._at(T.IDENT, T.BACKSLASH):
            name = self._parse_qualified_name()
            # union types: a|b
            while self._at(T.PIPE) and self._peek(1).type in (
                    T.IDENT, T.KW_ARRAY):
                self._advance()
                if self._at(T.KW_ARRAY):
                    self._advance()
                    name += "|array"
                else:
                    name += "|" + self._parse_qualified_name()
            return name
        return None

    def _parse_params(self) -> list[ast.Param]:
        self._expect(T.LPAREN)
        params: list[ast.Param] = []
        while not self._at(T.RPAREN, T.EOF):
            ptok = self._peek()
            # visibility modifiers for constructor promotion
            while self._at(T.KW_PUBLIC, T.KW_PRIVATE, T.KW_PROTECTED):
                self._advance()
            type_hint = None
            if not self._at(T.VARIABLE, T.AMP, T.ELLIPSIS):
                type_hint = self._parse_type_hint()
            by_ref = bool(self._accept(T.AMP))
            variadic = bool(self._accept(T.ELLIPSIS))
            name = self._expect(T.VARIABLE).value
            default = None
            if self._accept(T.ASSIGN):
                default = self.parse_expression()
            params.append(ast.Param(name, default, by_ref, variadic,
                                    type_hint, line=ptok.line, col=ptok.col))
            if not self._accept(T.COMMA):
                break
        self._expect(T.RPAREN)
        return params

    def _parse_function_decl(self) -> ast.FunctionDecl:
        tok = self._expect(T.KW_FUNCTION)
        by_ref = bool(self._accept(T.AMP))
        name = self._expect_name()
        params = self._parse_params()
        return_type = None
        if self._accept(T.COLON):
            return_type = self._parse_type_hint()
        self._expect(T.LBRACE)
        body = self._parse_statement_list(T.RBRACE)
        self._expect(T.RBRACE)
        return ast.FunctionDecl(name, params, body, by_ref, return_type,
                                line=tok.line, col=tok.col)

    def _parse_class_decl(self, modifiers: list[str]) -> ast.ClassDecl:
        tok = self._advance()  # class / interface / trait
        kind = tok.value.lower()
        name = self._expect_name()
        parent = None
        interfaces: list[str] = []
        if self._accept(T.KW_EXTENDS):
            first = self._parse_qualified_name()
            if kind == "interface":
                interfaces.append(first)  # interfaces extend interfaces
            else:
                parent = first
            while self._accept(T.COMMA):
                interfaces.append(self._parse_qualified_name())
        if self._accept(T.KW_IMPLEMENTS):
            interfaces.append(self._parse_qualified_name())
            while self._accept(T.COMMA):
                interfaces.append(self._parse_qualified_name())
        self._expect(T.LBRACE)
        members: list[ast.Node] = []
        while not self._at(T.RBRACE, T.EOF):
            members.append(self._parse_class_member())
        self._expect(T.RBRACE)
        return ast.ClassDecl(name, parent, interfaces, members, modifiers,
                             kind, line=tok.line, col=tok.col)

    def _parse_class_member(self) -> ast.Node:  # noqa: C901
        tok = self._peek()
        mods: list[str] = []
        while self._at(T.KW_PUBLIC, T.KW_PRIVATE, T.KW_PROTECTED,
                       T.KW_STATIC, T.KW_ABSTRACT, T.KW_FINAL, T.KW_VAR):
            mods.append(self._advance().value.lower())
        if self._at(T.KW_USE):  # trait use
            self._advance()
            names = [self._parse_qualified_name()]
            while self._accept(T.COMMA):
                names.append(self._parse_qualified_name())
            if self._accept(T.LBRACE):  # conflict-resolution block: skip
                depth = 1
                while depth and not self._at(T.EOF):
                    if self._at(T.LBRACE):
                        depth += 1
                    elif self._at(T.RBRACE):
                        depth -= 1
                    self._advance()
            else:
                self._expect_semi()
            return ast.UseTrait(names, line=tok.line, col=tok.col)
        if self._at(T.KW_CONST):
            self._advance()
            consts: list[tuple[str, ast.Node]] = []
            while True:
                name = self._expect_name()
                self._expect(T.ASSIGN)
                consts.append((name, self.parse_expression()))
                if not self._accept(T.COMMA):
                    break
            self._expect_semi()
            return ast.ClassConstDecl(mods, consts, line=tok.line, col=tok.col)
        if self._at(T.KW_FUNCTION):
            self._advance()
            by_ref = bool(self._accept(T.AMP))
            name = self._expect_name()
            params = self._parse_params()
            return_type = None
            if self._accept(T.COLON):
                return_type = self._parse_type_hint()
            body: list[ast.Node] | None = None
            if self._accept(T.LBRACE):
                body = self._parse_statement_list(T.RBRACE)
                self._expect(T.RBRACE)
            else:
                self._expect_semi()
            return ast.MethodDecl(name, params, body, mods, by_ref,
                                  return_type, line=tok.line, col=tok.col)
        # property, possibly typed
        type_hint = None
        if not self._at(T.VARIABLE):
            type_hint = self._parse_type_hint()
            if type_hint is None:
                raise self._error("expected class member")
        vars_: list[tuple[str, ast.Node | None]] = []
        while True:
            name = self._expect(T.VARIABLE).value
            default = None
            if self._accept(T.ASSIGN):
                default = self.parse_expression()
            vars_.append((name, default))
            if not self._accept(T.COMMA):
                break
        self._expect_semi()
        return ast.PropertyDecl(mods or ["public"], vars_, type_hint,
                                line=tok.line, col=tok.col)

    def _parse_namespace(self) -> ast.NamespaceDecl:
        tok = self._expect(T.KW_NAMESPACE)
        name = ""
        if self._at(T.IDENT):
            name = self._parse_qualified_name()
        if self._accept(T.LBRACE):
            body = self._parse_statement_list(T.RBRACE)
            self._expect(T.RBRACE)
            return ast.NamespaceDecl(name, body, line=tok.line, col=tok.col)
        self._expect_semi()
        return ast.NamespaceDecl(name, None, line=tok.line, col=tok.col)

    def _parse_use(self) -> ast.UseDecl:
        tok = self._expect(T.KW_USE)
        # "use function foo" / "use const foo" — the qualifier is irrelevant
        if self._at(T.KW_FUNCTION, T.KW_CONST):
            self._advance()
        imports: list[tuple[str, str | None]] = []
        while True:
            name = self._parse_qualified_name()
            alias = None
            if self._accept(T.KW_AS):
                alias = self._expect_name()
            imports.append((name, alias))
            if not self._accept(T.COMMA):
                break
        self._expect_semi()
        return ast.UseDecl(imports, line=tok.line, col=tok.col)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Node:
        """Parse a full expression, including low-precedence and/or/xor."""
        left = self._parse_assignment()
        while self._at(T.KW_AND, T.KW_OR, T.KW_XOR):
            op_tok = self._advance()
            op = {"and": "&&", "or": "||", "xor": "xor"}[
                op_tok.value.lower()]
            right = self._parse_assignment()
            left = ast.BinaryOp(op, left, right, line=op_tok.line, col=op_tok.col)
        return left

    def _parse_assignment(self) -> ast.Node:
        target = self._parse_ternary()
        tok = self._peek()
        if tok.type in _ASSIGN_OPS:
            self._advance()
            by_ref = False
            if tok.type is T.ASSIGN and self._accept(T.AMP):
                by_ref = True
            value = self._parse_assignment()  # right associative
            if isinstance(target, ast.ArrayLiteral) and \
                    tok.type is T.ASSIGN and not by_ref:
                targets = [item.value for item in target.items]
                return ast.ListAssign(targets, value, line=tok.line, col=tok.col)
            return ast.Assign(target, _ASSIGN_OPS[tok.type], value, by_ref,
                              line=tok.line, col=tok.col)
        return target

    def _parse_ternary(self) -> ast.Node:
        cond = self._parse_coalesce()
        tok = self._peek()
        if tok.type is T.QUESTION:
            self._advance()
            then: ast.Node | None = None
            if not self._at(T.COLON):
                then = self.parse_expression()
            self._expect(T.COLON)
            otherwise = self._parse_assignment()
            return ast.Ternary(cond, then, otherwise, line=tok.line, col=tok.col)
        return cond

    def _parse_coalesce(self) -> ast.Node:
        left = self._parse_binary(0)
        tok = self._peek()
        if tok.type is T.COALESCE:
            self._advance()
            right = self._parse_coalesce()  # right associative
            return ast.BinaryOp("??", left, right, line=tok.line, col=tok.col)
        return left

    def _parse_binary(self, level: int) -> ast.Node:
        # precedence climbing: one loop over the flattened operator table
        # replaces a ten-deep recursion per operand (all levels here are
        # left-associative)
        prec = _BINARY_PREC
        left = self._parse_instanceof()
        while True:
            tok = self.tokens[self.pos]
            entry = prec.get(tok.type)
            if entry is None or entry[0] < level:
                return left
            self.pos += 1  # the operator token (never EOF)
            right = self._parse_binary(entry[0] + 1)
            left = ast.BinaryOp(entry[1], left, right,
                                line=tok.line, col=tok.col)

    def _parse_instanceof(self) -> ast.Node:
        expr = self._parse_unary()
        while self._at(T.KW_INSTANCEOF):
            tok = self._advance()
            if self._at(T.IDENT, T.BACKSLASH):
                cls: str | ast.Node = self._parse_qualified_name()
            else:
                cls = self._parse_unary()
            expr = ast.InstanceOf(expr, cls, line=tok.line, col=tok.col)
        return expr

    def _parse_unary(self) -> ast.Node:  # noqa: C901
        tok = self._peek()
        tt = tok.type
        if tt is T.NOT:
            self._advance()
            return ast.UnaryOp("!", self._parse_unary(), line=tok.line, col=tok.col)
        if tt is T.MINUS or tt is T.PLUS or tt is T.TILDE:
            self._advance()
            return ast.UnaryOp(tok.value, self._parse_unary(),
                               line=tok.line, col=tok.col)
        if tt is T.INC or tt is T.DEC:
            self._advance()
            return ast.IncDec(tok.value, self._parse_unary(), True,
                              line=tok.line, col=tok.col)
        if tt is T.CAST:
            self._advance()
            return ast.Cast(tok.value, self._parse_unary(),
                            line=tok.line, col=tok.col)
        if tt is T.AT:
            self._advance()
            return ast.ErrorSuppress(self._parse_unary(),
                                     line=tok.line, col=tok.col)
        if tt is T.KW_PRINT:
            self._advance()
            return ast.PrintExpr(self.parse_expression(),
                                 line=tok.line, col=tok.col)
        if tt in (T.KW_INCLUDE, T.KW_INCLUDE_ONCE,
                  T.KW_REQUIRE, T.KW_REQUIRE_ONCE):
            self._advance()
            return ast.Include(tok.value.lower(), self.parse_expression(),
                               line=tok.line, col=tok.col)
        if tt is T.KW_NEW:
            self._advance()
            if self._at(T.IDENT, T.BACKSLASH, T.KW_STATIC):
                if self._at(T.KW_STATIC):
                    self._advance()
                    cls: str | ast.Node = "static"
                else:
                    cls = self._parse_qualified_name()
            elif self._at(T.VARIABLE):
                # only property/index postfix here: the "(" belongs to the
                # constructor arguments, not a call on the class expression
                cls = self._parse_new_class_expr()
            elif self._at(T.KW_CLASS):  # anonymous class
                return self._parse_anonymous_class(tok)
            else:
                raise self._error("expected class name after 'new'")
            args: list[ast.Argument] = []
            if self._at(T.LPAREN):
                args = self._parse_args()
            node: ast.Node = ast.New(cls, args, line=tok.line, col=tok.col)
            return self._parse_postfix(node)
        if tt is T.KW_CLONE:
            self._advance()
            return ast.Clone(self._parse_unary(), line=tok.line, col=tok.col)
        if tt is T.KW_EXIT:
            self._advance()
            expr = None
            if self._accept(T.LPAREN):
                if not self._at(T.RPAREN):
                    expr = self.parse_expression()
                self._expect(T.RPAREN)
            return ast.ExitExpr(expr, line=tok.line, col=tok.col)
        return self._parse_power()

    def _parse_new_class_expr(self) -> ast.Node:
        """Parse the class operand of ``new $expr(...)`` without treating the
        trailing parenthesis as a call on the expression."""
        node = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.type in (T.ARROW, T.NULLSAFE_ARROW):
                self._advance()
                if self._at(T.VARIABLE):
                    vtok = self._advance()
                    name: str | ast.Node = ast.Variable(
                        vtok.value, line=vtok.line, col=vtok.col)
                else:
                    name = self._expect_name()
                node = ast.PropertyAccess(node, name,
                                          tok.type is T.NULLSAFE_ARROW,
                                          line=tok.line, col=tok.col)
            elif tok.type is T.LBRACKET:
                self._advance()
                index = None
                if not self._at(T.RBRACKET):
                    index = self.parse_expression()
                self._expect(T.RBRACKET)
                node = ast.ArrayAccess(node, index, line=tok.line, col=tok.col)
            else:
                return node

    def _parse_anonymous_class(self, new_tok: Token) -> ast.Node:
        self._expect(T.KW_CLASS)
        args: list[ast.Argument] = []
        if self._at(T.LPAREN):
            args = self._parse_args()
        parent = None
        interfaces: list[str] = []
        if self._accept(T.KW_EXTENDS):
            parent = self._parse_qualified_name()
        if self._accept(T.KW_IMPLEMENTS):
            interfaces.append(self._parse_qualified_name())
            while self._accept(T.COMMA):
                interfaces.append(self._parse_qualified_name())
        self._expect(T.LBRACE)
        members: list[ast.Node] = []
        while not self._at(T.RBRACE, T.EOF):
            members.append(self._parse_class_member())
        self._expect(T.RBRACE)
        cls_node = ast.ClassDecl("", parent, interfaces, members, [],
                                 "class", line=new_tok.line, col=new_tok.col)
        return ast.New(cls_node, args, line=new_tok.line, col=new_tok.col)

    def _parse_power(self) -> ast.Node:
        base = self._parse_postfix(self._parse_primary())
        if self._at(T.POW):
            tok = self._advance()
            exponent = self._parse_unary()  # ** is right assoc, binds unary
            return ast.BinaryOp("**", base, exponent, line=tok.line, col=tok.col)
        return base

    def _parse_args(self) -> list[ast.Argument]:
        self._expect(T.LPAREN)
        args: list[ast.Argument] = []
        while not self._at(T.RPAREN, T.EOF):
            atok = self._peek()
            name = None
            if atok.type is T.IDENT and self._peek(1).type is T.COLON \
                    and self._peek(2).type is not T.COLON:
                name = self._advance().value
                self._advance()  # colon
            by_ref = bool(self._accept(T.AMP))
            spread = bool(self._accept(T.ELLIPSIS))
            value = self.parse_expression()
            args.append(ast.Argument(value, by_ref, spread, name,
                                     line=atok.line, col=atok.col))
            if not self._accept(T.COMMA):
                break
        self._expect(T.RPAREN)
        return args

    def _parse_postfix(self, node: ast.Node) -> ast.Node:  # noqa: C901
        while True:
            tok = self._peek()
            tt = tok.type
            if tt in (T.ARROW, T.NULLSAFE_ARROW):
                self._advance()
                nullsafe = tt is T.NULLSAFE_ARROW
                name: str | ast.Node
                if self._at(T.LBRACE):
                    self._advance()
                    name = self.parse_expression()
                    self._expect(T.RBRACE)
                elif self._at(T.VARIABLE):
                    vtok = self._advance()
                    name = ast.Variable(vtok.value, line=vtok.line, col=vtok.col)
                else:
                    name = self._expect_name()
                if self._at(T.LPAREN):
                    args = self._parse_args()
                    node = ast.MethodCall(node, name, args, nullsafe,
                                          line=tok.line, col=tok.col)
                else:
                    node = ast.PropertyAccess(node, name, nullsafe,
                                              line=tok.line, col=tok.col)
            elif tt is T.DOUBLE_COLON:
                self._advance()
                cls = _node_class_name(node)
                if self._at(T.VARIABLE):
                    vtok = self._advance()
                    node = ast.StaticPropertyAccess(
                        cls, vtok.value, line=tok.line, col=tok.col)
                elif self._at(T.KW_CLASS):
                    self._advance()
                    node = ast.ClassConstAccess(cls, "class",
                                                line=tok.line, col=tok.col)
                else:
                    name = self._expect_name()
                    if self._at(T.LPAREN):
                        args = self._parse_args()
                        node = ast.StaticCall(cls, name, args,
                                              line=tok.line, col=tok.col)
                    else:
                        node = ast.ClassConstAccess(cls, name,
                                                    line=tok.line, col=tok.col)
            elif tt is T.LBRACKET:
                self._advance()
                index = None
                if not self._at(T.RBRACKET):
                    index = self.parse_expression()
                self._expect(T.RBRACKET)
                node = ast.ArrayAccess(node, index, line=tok.line, col=tok.col)
            elif tt is T.LBRACE and isinstance(
                    node, (ast.Variable, ast.ArrayAccess,
                           ast.PropertyAccess)):
                # legacy string/array offset: $s{0}
                self._advance()
                index = self.parse_expression()
                self._expect(T.RBRACE)
                node = ast.ArrayAccess(node, index, line=tok.line, col=tok.col)
            elif tt is T.LPAREN and isinstance(
                    node, (ast.Variable, ast.ArrayAccess,
                           ast.PropertyAccess, ast.StaticPropertyAccess,
                           ast.Closure, ast.FunctionCall, ast.MethodCall,
                           ast.StaticCall)):
                args = self._parse_args()
                node = ast.FunctionCall(node, args, line=tok.line, col=tok.col)
            elif tt in (T.INC, T.DEC):
                self._advance()
                node = ast.IncDec(tok.value, node, False,
                                  line=tok.line, col=tok.col)
            else:
                return node

    def _parse_primary(self) -> ast.Node:  # noqa: C901
        tok = self._peek()
        tt = tok.type

        if tt is T.VARIABLE:
            self._advance()
            return ast.Variable(tok.value, line=tok.line, col=tok.col)
        if tt is T.DOLLAR:
            self._advance()
            if self._accept(T.LBRACE):
                expr = self.parse_expression()
                self._expect(T.RBRACE)
                return ast.VariableVariable(expr, line=tok.line, col=tok.col)
            inner = self._parse_primary()
            return ast.VariableVariable(inner, line=tok.line, col=tok.col)
        if tt is T.INT:
            self._advance()
            text = tok.value.replace("_", "")
            return ast.Literal(int(text, 0), "int", line=tok.line, col=tok.col)
        if tt is T.FLOAT:
            self._advance()
            return ast.Literal(float(tok.value.replace("_", "")), "float",
                               line=tok.line, col=tok.col)
        if tt is T.SQ_STRING or tt is T.NOWDOC:
            self._advance()
            return ast.Literal(tok.value, "string", line=tok.line, col=tok.col)
        if tt is T.DQ_STRING or tt is T.HEREDOC:
            self._advance()
            return parse_interpolated(tok.value, tok.line, tok.col,
                                      self.filename)
        if tt is T.BACKTICK:
            self._advance()
            interp = parse_interpolated(tok.value, tok.line, tok.col,
                                        self.filename)
            parts = (interp.parts if isinstance(interp, ast.InterpolatedString)
                     else [interp])
            return ast.ShellExec(parts, line=tok.line, col=tok.col)
        if tt is T.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(T.RPAREN)
            return self._parse_postfix(expr)
        if tt is T.LBRACKET:
            return self._parse_array_literal(T.LBRACKET, T.RBRACKET)
        if tt is T.KW_ARRAY:
            nxt = self._peek(1)
            if nxt.type is T.LPAREN:
                self._advance()
                return self._parse_array_literal(T.LPAREN, T.RPAREN)
            self._advance()  # bare 'array' as a type-ish constant
            return ast.ConstFetch("array", line=tok.line, col=tok.col)
        if tt is T.KW_LIST:
            self._advance()
            self._expect(T.LPAREN)
            targets: list[ast.Node | None] = []
            while not self._at(T.RPAREN, T.EOF):
                if self._at(T.COMMA):
                    targets.append(None)
                else:
                    targets.append(self.parse_expression())
                if not self._accept(T.COMMA):
                    break
            self._expect(T.RPAREN)
            if self._accept(T.ASSIGN):
                value = self.parse_expression()
                return ast.ListAssign(targets, value,
                                      line=tok.line, col=tok.col)
            # bare list(...) pattern (foreach destructuring target)
            return ast.ListAssign(targets, None, line=tok.line, col=tok.col)
        if tt is T.KW_ISSET:
            self._advance()
            self._expect(T.LPAREN)
            vars_ = [self.parse_expression()]
            while self._accept(T.COMMA):
                vars_.append(self.parse_expression())
            self._expect(T.RPAREN)
            return ast.Isset(vars_, line=tok.line, col=tok.col)
        if tt is T.KW_EMPTY:
            self._advance()
            self._expect(T.LPAREN)
            expr = self.parse_expression()
            self._expect(T.RPAREN)
            return ast.Empty(expr, line=tok.line, col=tok.col)
        if tt is T.KW_FUNCTION:
            return self._parse_closure()
        if tt is T.KW_FN:
            return self._parse_arrow_function()
        if tt is T.KW_MATCH:
            return self._parse_match()
        if tt is T.KW_STATIC:
            nxt = self._peek(1)
            if nxt.type is T.KW_FUNCTION:
                self._advance()
                return self._parse_closure()
            if nxt.type is T.DOUBLE_COLON:
                self._advance()
                return self._parse_postfix_static("static", tok)
            self._advance()
            return ast.ConstFetch("static", line=tok.line, col=tok.col)
        if tt is T.IDENT or tt is T.BACKSLASH:
            name = self._parse_qualified_name()
            lowered = name.lower().lstrip("\\")
            if self._at(T.LPAREN):
                args = self._parse_args()
                return ast.FunctionCall(name, args, line=tok.line, col=tok.col)
            if self._at(T.DOUBLE_COLON):
                return self._parse_postfix_static(name, tok)
            if lowered == "true":
                return ast.Literal(True, "bool", line=tok.line, col=tok.col)
            if lowered == "false":
                return ast.Literal(False, "bool", line=tok.line, col=tok.col)
            if lowered == "null":
                return ast.Literal(None, "null", line=tok.line, col=tok.col)
            if lowered in _MAGIC_CONSTANTS:
                return ast.ConstFetch(name, line=tok.line, col=tok.col)
            return ast.ConstFetch(name, line=tok.line, col=tok.col)
        if tt is T.AMP:
            # stray by-ref in expression context (e.g. args list quirk)
            self._advance()
            return self._parse_unary()

        raise self._error(
            f"unexpected token {tt.value!r} ({tok.value!r}) in expression")

    def _parse_postfix_static(self, cls: str, tok: Token) -> ast.Node:
        """Continue parsing after ``Name::``."""
        self._expect(T.DOUBLE_COLON)
        if self._at(T.VARIABLE):
            vtok = self._advance()
            node: ast.Node = ast.StaticPropertyAccess(
                cls, vtok.value, line=tok.line, col=tok.col)
        elif self._at(T.KW_CLASS):
            self._advance()
            node = ast.ClassConstAccess(cls, "class", line=tok.line, col=tok.col)
        else:
            name = self._expect_name()
            if self._at(T.LPAREN):
                args = self._parse_args()
                node = ast.StaticCall(cls, name, args, line=tok.line, col=tok.col)
            else:
                node = ast.ClassConstAccess(cls, name, line=tok.line, col=tok.col)
        return self._parse_postfix(node)

    def _parse_array_literal(self, open_: T, close: T) -> ast.ArrayLiteral:
        tok = self._expect(open_)
        items: list[ast.ArrayItem] = []
        while not self._at(close, T.EOF):
            itok = self._peek()
            spread = bool(self._accept(T.ELLIPSIS))
            by_ref = bool(self._accept(T.AMP))
            first = self.parse_expression()
            if self._accept(T.DOUBLE_ARROW):
                by_ref = bool(self._accept(T.AMP))
                value = self.parse_expression()
                items.append(ast.ArrayItem(first, value, by_ref, spread,
                                           line=itok.line, col=itok.col))
            else:
                items.append(ast.ArrayItem(None, first, by_ref, spread,
                                           line=itok.line, col=itok.col))
            if not self._accept(T.COMMA):
                break
        self._expect(close)
        return ast.ArrayLiteral(items, line=tok.line, col=tok.col)

    def _parse_arrow_function(self) -> ast.Node:
        """PHP 7.4 arrow function: ``fn($x) => expr``.

        A bare ``fn`` identifier (legacy code using it as a name) falls
        back to constant/function-call parsing.
        """
        tok = self._expect(T.KW_FN)
        by_ref = bool(self._accept(T.AMP))
        if not self._at(T.LPAREN):
            # legacy: "fn" used as a plain identifier
            return ast.ConstFetch(tok.value, line=tok.line, col=tok.col)
        params = self._parse_params()
        if self._accept(T.COLON):
            self._parse_type_hint()
        if not self._at(T.DOUBLE_ARROW):
            # it was a call: fn(...) in pre-7.4 code
            args = [ast.Argument(_param_to_expr(p), line=tok.line, col=tok.col)
                    for p in params]
            return self._parse_postfix(
                ast.FunctionCall(tok.value, args, line=tok.line, col=tok.col))
        self._expect(T.DOUBLE_ARROW)
        body_expr = self.parse_expression()
        body: list[ast.Node] = [ast.Return(body_expr,
                                           line=body_expr.line,
                                           col=body_expr.col)]
        return ast.Closure(params, [], body, by_ref, True,
                           line=tok.line, col=tok.col)

    def _parse_match(self) -> ast.Node:
        """PHP 8 ``match`` expression, with a fallback for legacy code
        calling a function named ``match``."""
        tok = self._expect(T.KW_MATCH)
        if not self._at(T.LPAREN):
            return ast.ConstFetch(tok.value, line=tok.line, col=tok.col)
        save = self.pos
        self._expect(T.LPAREN)
        subject = self.parse_expression()
        if not self._at(T.RPAREN) or self._peek(1).type is not T.LBRACE:
            # legacy function call named "match"
            self.pos = save
            args = self._parse_args()
            return self._parse_postfix(
                ast.FunctionCall(tok.value, args, line=tok.line, col=tok.col))
        self._expect(T.RPAREN)
        self._expect(T.LBRACE)
        arms: list[ast.MatchArm] = []
        while not self._at(T.RBRACE, T.EOF):
            atok = self._peek()
            conditions: list[ast.Node] | None
            if self._accept(T.KW_DEFAULT):
                conditions = None
            else:
                conditions = [self.parse_expression()]
                while self._accept(T.COMMA):
                    if self._at(T.DOUBLE_ARROW):
                        break
                    conditions.append(self.parse_expression())
            self._expect(T.DOUBLE_ARROW)
            body = self.parse_expression()
            arms.append(ast.MatchArm(conditions, body,
                                     line=atok.line, col=atok.col))
            if not self._accept(T.COMMA):
                break
        self._expect(T.RBRACE)
        return ast.Match(subject, arms, line=tok.line, col=tok.col)

    def _parse_closure(self) -> ast.Closure:
        tok = self._expect(T.KW_FUNCTION)
        by_ref = bool(self._accept(T.AMP))
        params = self._parse_params()
        uses: list[tuple[str, bool]] = []
        if self._accept(T.KW_USE):
            self._expect(T.LPAREN)
            while not self._at(T.RPAREN, T.EOF):
                uref = bool(self._accept(T.AMP))
                uses.append((self._expect(T.VARIABLE).value, uref))
                if not self._accept(T.COMMA):
                    break
            self._expect(T.RPAREN)
        if self._accept(T.COLON):
            self._parse_type_hint()
        self._expect(T.LBRACE)
        body = self._parse_statement_list(T.RBRACE)
        self._expect(T.RBRACE)
        return ast.Closure(params, uses, body, by_ref, False,
                           line=tok.line, col=tok.col)


def _param_to_expr(param: ast.Param) -> ast.Node:
    """Best-effort conversion of a misparsed 'param' back to an argument
    expression (legacy ``fn(...)`` call fallback)."""
    return ast.Variable(param.name, line=param.line, col=param.col)


def _node_class_name(node: ast.Node) -> str | ast.Node:
    """Turn a parsed node used before ``::`` into a class-name operand."""
    if isinstance(node, ast.ConstFetch):
        return node.name
    return node


# ---------------------------------------------------------------------------
# double-quoted string interpolation
# ---------------------------------------------------------------------------

_SIMPLE_VAR_RE = re.compile(
    r"\$([A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*)"
    r"(\[(?P<idx>[^\[\]]*)\]|->(?P<prop>[A-Za-z_][A-Za-z0-9_]*))?"
)
_IDX_NUM_RE = re.compile(r"^-?\d+$")
_IDX_VAR_RE = re.compile(r"^\$([A-Za-z_][A-Za-z0-9_]*)$")
_OCTAL_ESC_RE = re.compile(r"[0-7]{1,3}")
_HEX_ESC_RE = re.compile(r"x[0-9a-fA-F]{1,2}")
_UNI_ESC_RE = re.compile(r"u\{([0-9a-fA-F]+)\}")


def parse_interpolated(raw: str, line: int, col: int,
                       filename: str = "<source>") -> ast.Node:
    """Parse the raw inner text of a double-quoted string or heredoc.

    Returns a plain :class:`~repro.php.ast_nodes.Literal` when the string has
    no interpolation, otherwise an
    :class:`~repro.php.ast_nodes.InterpolatedString`.
    """
    parts: list[ast.Node] = []
    buf: list[str] = []
    i = 0
    n = len(raw)

    def flush() -> None:
        if buf:
            parts.append(ast.Literal("".join(buf), "string",
                                     line=line, col=col))
            buf.clear()

    while i < n:
        ch = raw[i]
        if ch == "\\" and i + 1 < n:
            nxt = raw[i + 1]
            if nxt in _DQ_ESCAPES:
                buf.append(_DQ_ESCAPES[nxt])
                i += 2
                continue
            m = _HEX_ESC_RE.match(raw, i + 1)
            if m:
                buf.append(chr(int(m.group(0)[1:], 16)))
                i = m.end()  # match positions are absolute
                continue
            m = _UNI_ESC_RE.match(raw, i + 1)
            if m:
                buf.append(chr(int(m.group(1), 16)))
                i = m.end()
                continue
            m = _OCTAL_ESC_RE.match(raw, i + 1)
            if m:
                buf.append(chr(int(m.group(0), 8) & 0xFF))
                i = m.end()
                continue
            buf.append("\\" + nxt)
            i += 2
            continue
        if ch == "$":
            m = _SIMPLE_VAR_RE.match(raw, i)
            if m:
                flush()
                var: ast.Node = ast.Variable(m.group(1), line=line, col=col)
                idx = m.group("idx")
                prop = m.group("prop")
                if idx is not None:
                    var = ast.ArrayAccess(var, _parse_simple_index(idx, line,
                                                                   col),
                                          line=line, col=col)
                elif prop is not None:
                    var = ast.PropertyAccess(var, prop, line=line, col=col)
                parts.append(var)
                i = m.end()
                continue
            buf.append(ch)
            i += 1
            continue
        if ch == "{" and i + 1 < n and raw[i + 1] == "$":
            end = _find_matching_brace(raw, i)
            if end != -1:
                flush()
                inner = raw[i + 1:end]
                parts.append(_parse_embedded_expr(inner, line, col, filename))
                i = end + 1
                continue
            buf.append(ch)
            i += 1
            continue
        if ch == "$" or ch == "{":
            buf.append(ch)
            i += 1
            continue
        buf.append(ch)
        i += 1

    flush()
    if not parts:
        return ast.Literal("", "string", line=line, col=col)
    if len(parts) == 1 and isinstance(parts[0], ast.Literal):
        return parts[0]
    return ast.InterpolatedString(parts, line=line, col=col)


def _parse_simple_index(text: str, line: int, col: int) -> ast.Node:
    """Parse the inside of ``$a[...]`` in simple interpolation syntax."""
    text = text.strip()
    if _IDX_NUM_RE.match(text):
        return ast.Literal(int(text), "int", line=line, col=col)
    m = _IDX_VAR_RE.match(text)
    if m:
        return ast.Variable(m.group(1), line=line, col=col)
    # bare word index: $a[key] means $a['key'] inside strings
    return ast.Literal(text, "string", line=line, col=col)


def _find_matching_brace(raw: str, start: int) -> int:
    depth = 0
    i = start
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return i
        elif ch == "'" or ch == '"':
            quote = ch
            i += 1
            while i < n and raw[i] != quote:
                if raw[i] == "\\":
                    i += 1
                i += 1
        i += 1
    return -1


def _parse_embedded_expr(source: str, line: int, col: int,
                         filename: str) -> ast.Node:
    """Parse a ``{$...}`` complex-interpolation expression."""
    try:
        tokens = tokenize("<?php " + source + ";", filename)
        parser = Parser(tokens, filename)
        parser._accept(T.OPEN_TAG)
        expr = parser.parse_expression()
        return expr
    except PhpSyntaxError:
        # fall back to a literal so one bad interpolation never kills a file
        return ast.Literal("{" + source + "}", "string", line=line, col=col)


def parse(source: str, filename: str = "<source>") -> ast.Program:
    """Lex and parse *source*, returning the :class:`Program` AST."""
    return Parser(tokenize(source, filename), filename).parse_program()


def parse_with_recovery(
        source: str,
        filename: str = "<source>") -> tuple[ast.Program,
                                             list[PhpSyntaxError]]:
    """Parse *source* with statement-level error recovery.

    Returns the program plus the syntax errors that were skipped over
    (one per damaged statement).  Lexer errors and files with more than
    :attr:`Parser.MAX_WARNINGS` damaged statements still raise
    :class:`PhpSyntaxError` — those files are genuinely unparseable.
    """
    parser = Parser(tokenize(source, filename), filename, recover=True)
    program = parser.parse_program()
    return program, list(parser.warnings)
