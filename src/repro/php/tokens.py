"""Token definitions for the PHP lexer.

The lexer produces a flat stream of :class:`Token` objects.  Token types are
members of :class:`TokenType`; keywords get their own token types so the
parser can dispatch on type alone.  PHP keywords are case-insensitive — the
lexer normalizes them — but the original lexeme is preserved in ``value``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """All token kinds produced by :class:`repro.php.lexer.Lexer`."""

    # structure
    INLINE_HTML = "inline_html"
    OPEN_TAG = "open_tag"            # <?php or <?=
    CLOSE_TAG = "close_tag"          # ?>
    EOF = "eof"

    # atoms
    VARIABLE = "variable"            # $name (value excludes the $)
    IDENT = "ident"                  # function / class / constant names
    INT = "int"
    FLOAT = "float"
    SQ_STRING = "sq_string"          # single-quoted; value is decoded text
    DQ_STRING = "dq_string"          # double-quoted; value is raw inner text
    HEREDOC = "heredoc"              # value is raw inner text (interpolated)
    NOWDOC = "nowdoc"                # value is decoded text (no interpolation)
    BACKTICK = "backtick"            # shell-exec string; raw inner text
    CAST = "cast"                    # (int) (string) ... ; value is the type

    # keywords
    KW_IF = "if"
    KW_ELSE = "else"
    KW_ELSEIF = "elseif"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_FOREACH = "foreach"
    KW_AS = "as"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"
    KW_FUNCTION = "function"
    KW_ECHO = "echo"
    KW_PRINT = "print"
    KW_GLOBAL = "global"
    KW_STATIC = "static"
    KW_CLASS = "class"
    KW_INTERFACE = "interface"
    KW_TRAIT = "trait"
    KW_EXTENDS = "extends"
    KW_IMPLEMENTS = "implements"
    KW_NEW = "new"
    KW_CLONE = "clone"
    KW_PUBLIC = "public"
    KW_PRIVATE = "private"
    KW_PROTECTED = "protected"
    KW_ABSTRACT = "abstract"
    KW_FINAL = "final"
    KW_CONST = "const"
    KW_VAR = "var"
    KW_INCLUDE = "include"
    KW_INCLUDE_ONCE = "include_once"
    KW_REQUIRE = "require"
    KW_REQUIRE_ONCE = "require_once"
    KW_ISSET = "isset"
    KW_UNSET = "unset"
    KW_EMPTY = "empty"
    KW_LIST = "list"
    KW_ARRAY = "array"
    KW_EXIT = "exit"                 # exit and die
    KW_TRY = "try"
    KW_CATCH = "catch"
    KW_FINALLY = "finally"
    KW_THROW = "throw"
    KW_INSTANCEOF = "instanceof"
    KW_NAMESPACE = "namespace"
    KW_USE = "use"
    KW_AND = "and"                   # low-precedence and/or/xor
    KW_OR = "or"
    KW_XOR = "xor"
    KW_ENDIF = "endif"
    KW_ENDWHILE = "endwhile"
    KW_ENDFOR = "endfor"
    KW_ENDFOREACH = "endforeach"
    KW_ENDSWITCH = "endswitch"
    KW_FN = "fn"
    KW_MATCH = "match"

    # punctuation / operators
    SEMI = ";"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    ARROW = "->"
    NULLSAFE_ARROW = "?->"
    DOUBLE_COLON = "::"
    DOUBLE_ARROW = "=>"
    QUESTION = "?"
    COLON = ":"
    AT = "@"
    DOLLAR = "$"
    ELLIPSIS = "..."
    BACKSLASH = "\\"

    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    MUL_ASSIGN = "*="
    DIV_ASSIGN = "/="
    MOD_ASSIGN = "%="
    CONCAT_ASSIGN = ".="
    POW_ASSIGN = "**="
    AND_ASSIGN = "&="
    OR_ASSIGN = "|="
    XOR_ASSIGN = "^="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="
    COALESCE_ASSIGN = "??="

    PLUS = "+"
    MINUS = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    POW = "**"
    DOT = "."
    NOT = "!"
    INC = "++"
    DEC = "--"

    EQ = "=="
    IDENTICAL = "==="
    NEQ = "!="
    NOT_IDENTICAL = "!=="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    SPACESHIP = "<=>"

    BOOL_AND = "&&"
    BOOL_OR = "||"
    COALESCE = "??"

    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHL = "<<"
    SHR = ">>"


#: Map of lowercase keyword lexeme -> token type.
KEYWORDS: dict[str, TokenType] = {
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "elseif": TokenType.KW_ELSEIF,
    "while": TokenType.KW_WHILE,
    "do": TokenType.KW_DO,
    "for": TokenType.KW_FOR,
    "foreach": TokenType.KW_FOREACH,
    "as": TokenType.KW_AS,
    "switch": TokenType.KW_SWITCH,
    "case": TokenType.KW_CASE,
    "default": TokenType.KW_DEFAULT,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
    "return": TokenType.KW_RETURN,
    "function": TokenType.KW_FUNCTION,
    "echo": TokenType.KW_ECHO,
    "print": TokenType.KW_PRINT,
    "global": TokenType.KW_GLOBAL,
    "static": TokenType.KW_STATIC,
    "class": TokenType.KW_CLASS,
    "interface": TokenType.KW_INTERFACE,
    "trait": TokenType.KW_TRAIT,
    "extends": TokenType.KW_EXTENDS,
    "implements": TokenType.KW_IMPLEMENTS,
    "new": TokenType.KW_NEW,
    "clone": TokenType.KW_CLONE,
    "public": TokenType.KW_PUBLIC,
    "private": TokenType.KW_PRIVATE,
    "protected": TokenType.KW_PROTECTED,
    "abstract": TokenType.KW_ABSTRACT,
    "final": TokenType.KW_FINAL,
    "const": TokenType.KW_CONST,
    "var": TokenType.KW_VAR,
    "include": TokenType.KW_INCLUDE,
    "include_once": TokenType.KW_INCLUDE_ONCE,
    "require": TokenType.KW_REQUIRE,
    "require_once": TokenType.KW_REQUIRE_ONCE,
    "isset": TokenType.KW_ISSET,
    "unset": TokenType.KW_UNSET,
    "empty": TokenType.KW_EMPTY,
    "list": TokenType.KW_LIST,
    "array": TokenType.KW_ARRAY,
    "exit": TokenType.KW_EXIT,
    "die": TokenType.KW_EXIT,
    "try": TokenType.KW_TRY,
    "catch": TokenType.KW_CATCH,
    "finally": TokenType.KW_FINALLY,
    "throw": TokenType.KW_THROW,
    "instanceof": TokenType.KW_INSTANCEOF,
    "namespace": TokenType.KW_NAMESPACE,
    "use": TokenType.KW_USE,
    "and": TokenType.KW_AND,
    "or": TokenType.KW_OR,
    "xor": TokenType.KW_XOR,
    "endif": TokenType.KW_ENDIF,
    "endwhile": TokenType.KW_ENDWHILE,
    "endfor": TokenType.KW_ENDFOR,
    "endforeach": TokenType.KW_ENDFOREACH,
    "endswitch": TokenType.KW_ENDSWITCH,
    "fn": TokenType.KW_FN,
    "match": TokenType.KW_MATCH,
}

#: Cast types recognized inside parentheses, normalized.
CAST_TYPES: dict[str, str] = {
    "int": "int", "integer": "int",
    "float": "float", "double": "float", "real": "float",
    "string": "string", "binary": "string",
    "bool": "bool", "boolean": "bool",
    "array": "array",
    "object": "object",
    "unset": "unset",
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    Attributes:
        type: the :class:`TokenType` of this token.
        value: the lexeme (keywords keep their original spelling; strings
            hold their *inner* text; variables exclude the leading ``$``).
        line: 1-based source line where the token starts.
        col: 1-based source column where the token starts.
    """

    type: TokenType
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact, test-friendly repr
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.col})"
