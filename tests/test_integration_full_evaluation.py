"""Integration: the paper's headline numbers, reproduced inside the test
suite (the benchmarks print the full tables; this keeps the claim guarded
by `pytest tests/` alone)."""

from collections import Counter

import pytest

pytestmark = pytest.mark.slow

from repro.corpus import (
    PAPER_CLASS_TOTALS,
    PAPER_PLUGIN_CLASS_TOTALS,
    PAPER_PLUGIN_FP,
    PAPER_PLUGIN_FPP,
    PAPER_WAP_FP,
    PAPER_WAP_FPP,
    PAPER_WAPE_FP,
    PAPER_WAPE_FPP,
    build_webapp_corpus,
    build_wordpress_corpus,
)
from repro.tool import Wap21, Wape

SHARED = ("SQLI", "XSS", "Files", "SCD")


@pytest.fixture(scope="module")
def webapp_runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("int_webapps")
    packages = build_webapp_corpus(str(root), vulnerable_only=True)
    wape = Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])
    wap21 = Wap21()
    return [(pkg, wap21.analyze_tree(pkg.path),
             wape.analyze_tree(pkg.path)) for pkg in packages]


@pytest.fixture(scope="module")
def plugin_runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("int_plugins")
    packages = build_wordpress_corpus(str(root), vulnerable_only=True)
    wape = Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])
    return [(pkg, wape.analyze_tree(pkg.path)) for pkg in packages]


class TestTable6Reproduction:
    def test_wape_class_totals_exact(self, webapp_runs):
        totals = Counter()
        for _pkg, _old, new in webapp_runs:
            totals += new.counts_by_group()
        expected = Counter(PAPER_CLASS_TOTALS)
        expected["SQLI"] += PAPER_WAPE_FP  # the 18 unpredictable FPs
        assert totals == expected

    def test_fp_prediction_totals_exact(self, webapp_runs):
        wap_fpp = sum(len(old.predicted_false_positives)
                      for _p, old, _n in webapp_runs)
        wape_fpp = sum(len(new.predicted_false_positives)
                       for _p, _o, new in webapp_runs)
        assert wap_fpp == PAPER_WAP_FPP    # 62
        assert wape_fpp == PAPER_WAPE_FPP  # 104 = 62 + 42

    def test_wap21_reports_more_but_false(self, webapp_runs):
        """'WAP v2.1 reported more vulnerabilities than WAPe, but they
        were false positives' — the 60 unpredicted FP candidates."""
        wap_shared = Counter()
        wape_shared = Counter()
        for _pkg, old, new in webapp_runs:
            for group, n in old.counts_by_group().items():
                if group in SHARED:
                    wap_shared[group] += n
            for group, n in new.counts_by_group().items():
                if group in SHARED:
                    wape_shared[group] += n
        diff = sum(wap_shared.values()) - (
            sum(wape_shared.values()) - PAPER_WAPE_FP + PAPER_WAP_FP)
        # both see the same 386 shared vulns; they differ only in which
        # FP candidates they fail to dismiss (60 vs 18)
        assert diff == 0

    def test_new_classes_invisible_to_wap21(self, webapp_runs):
        for _pkg, old, _new in webapp_runs:
            groups = set(old.counts_by_group())
            assert groups <= set(SHARED) | {"OSCI", "PHPCI"}

    def test_every_wap21_detection_found_by_wape(self, webapp_runs):
        for _pkg, old, new in webapp_runs:
            old_keys = {o.candidate.key() for o in old.outcomes}
            new_keys = {o.candidate.key() for o in new.outcomes}
            assert old_keys <= new_keys


class TestTable7Reproduction:
    def test_plugin_totals_exact(self, plugin_runs):
        totals = Counter()
        for _pkg, report in plugin_runs:
            totals += report.counts_by_group()
        expected = Counter(PAPER_PLUGIN_CLASS_TOTALS)
        expected["SQLI"] += PAPER_PLUGIN_FP
        assert totals == expected

    def test_plugin_fpp_exact(self, plugin_runs):
        fpp = sum(len(r.predicted_false_positives)
                  for _p, r in plugin_runs)
        assert fpp == PAPER_PLUGIN_FPP

    def test_per_plugin_rows(self, plugin_runs):
        for pkg, report in plugin_runs:
            got = Counter(o.vuln_class
                          for o in report.real_vulnerabilities)
            expected = Counter(pkg.profile.vulns)
            expected["sqli"] = expected.get("sqli", 0) + \
                pkg.profile.fp_custom
            assert got == +expected, pkg.name
