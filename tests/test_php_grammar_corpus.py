"""Grammar regression corpus (ISSUE 3 satellites).

Small real-world PHP shapes the frontend used to reject or crash on:
interleaved HTML inside braced blocks, anonymous classes through the
unparser, binary-string literals, ``goto``/``label:`` statements, and
statement-level error recovery (a damaged region yields a warning while
the rest of the file is still parsed and analyzed).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import PhpSyntaxError
from repro.php import ast, parse, parse_with_recovery, tokenize, unparse
from repro.tool import Wape
from repro.analysis.options import ScanOptions


def roundtrip(source: str) -> ast.Program:
    """Unparse then re-parse: the output must stay valid PHP."""
    program = parse(source, "t.php")
    return parse(unparse(program), "t.php")


def structural_dump(node) -> object:
    """A nested, position-free rendering of an AST for equality checks.

    Line/col are excluded on purpose: unparsing reflows the source, so
    positions legitimately differ while the structure must not.
    """
    if isinstance(node, ast.InlineHTML):
        # unparsing reflows tag boundaries onto their own lines, so
        # surrounding whitespace in raw HTML is a legitimate diff
        return ("InlineHTML", node.text.strip())
    if isinstance(node, ast.Node):
        return (type(node).__name__, {
            f.name: structural_dump(getattr(node, f.name))
            for f in dataclasses.fields(node)
            if f.name not in ("line", "col")
        })
    if isinstance(node, list):
        return [structural_dump(item) for item in node]
    if isinstance(node, tuple):
        return tuple(structural_dump(item) for item in node)
    if isinstance(node, dict):
        return {key: structural_dump(value)
                for key, value in node.items()}
    return node


# ---------------------------------------------------------------------------
# interleaved HTML
# ---------------------------------------------------------------------------

class TestInterleavedHtml:
    def test_html_inside_if_block(self):
        program = parse(
            "<?php if ($a) { ?><b>yes</b><?php } else { ?>no<?php } ?>",
            "t.php")
        assert any(isinstance(n, ast.If) for n in program.body)

    def test_html_between_switch_brace_and_cases(self):
        source = ("<?php switch ($x) { ?>\n<!-- legacy -->\n"
                  "<?php case 1: echo 'one'; break; default: echo 'n'; }")
        program = parse(source, "t.php")
        switch = next(n for n in program.body
                      if isinstance(n, ast.Switch))
        assert len(switch.cases) == 2

    def test_html_inside_function_body(self):
        source = "<?php function f() { ?><hr><?php return 1; }"
        program = parse(source, "t.php")
        decl = next(n for n in program.body
                    if isinstance(n, ast.FunctionDecl))
        assert any(isinstance(n, ast.Return) for n in decl.body)


# ---------------------------------------------------------------------------
# anonymous classes
# ---------------------------------------------------------------------------

class TestAnonymousClass:
    SOURCE = ("<?php $h = new class(1) extends Base implements Loggable {"
              " public $level = 1;"
              " function log($m) { return $m; } };")

    def test_parses(self):
        program = parse(self.SOURCE, "t.php")
        assign = program.body[0].expr
        assert isinstance(assign.value, ast.New)
        assert isinstance(assign.value.cls, ast.ClassDecl)

    def test_unparse_does_not_crash_and_roundtrips(self):
        # regression: unparse() raised TypeError ("cannot unparse
        # ClassDecl") on new-class expressions
        program = roundtrip(self.SOURCE)
        assign = program.body[0].expr
        decl = assign.value.cls
        assert decl.parent == "Base"
        assert decl.interfaces == ["Loggable"]
        assert len(decl.members) == 2

    def test_unparse_empty_anon_class(self):
        program = roundtrip("<?php $o = new class {};")
        assert isinstance(program.body[0].expr.value.cls, ast.ClassDecl)


# ---------------------------------------------------------------------------
# binary strings
# ---------------------------------------------------------------------------

class TestBinaryStrings:
    @pytest.mark.parametrize("literal, value", [
        ('b"abc"', "abc"),
        ("b'abc'", "abc"),
        ('B"x"', "x"),
        ("B'x'", "x"),
    ])
    def test_prefix_is_dropped(self, literal, value):
        program = parse(f"<?php $s = {literal};", "t.php")
        assert program.body[0].expr.value.value == value

    def test_bare_b_is_still_an_identifier(self):
        program = parse("<?php $x = b;", "t.php")
        assert isinstance(program.body[0].expr.value, ast.ConstFetch)

    def test_b_function_call_unaffected(self):
        tokens = tokenize("<?php b($x);", "t.php")
        assert any(t.value == "b" for t in tokens)

    def test_roundtrip(self):
        program = roundtrip('<?php echo b"safe";')
        assert program.body[0].exprs[0].value == "safe"


# ---------------------------------------------------------------------------
# goto / labels
# ---------------------------------------------------------------------------

class TestGoto:
    SOURCE = ("<?php start:\n"
              "$i = $i + 1;\n"
              "if ($i < 3) { goto start; }\n"
              "echo $i;")

    def test_parses(self):
        program = parse(self.SOURCE, "t.php")
        assert isinstance(program.body[0], ast.Label)
        assert program.body[0].name == "start"
        gotos = [n for n in program.body[2].then
                 if isinstance(n, ast.Goto)]
        assert gotos and gotos[0].label == "start"

    def test_roundtrip(self):
        text = unparse(parse(self.SOURCE, "t.php"))
        assert "goto start;" in text
        assert "start:" in text
        parse(text, "t.php")

    def test_taint_flows_past_labels(self):
        found = Wape().fused_detector.detect_source(
            "<?php retry: $q = $_GET['q']; goto done; done: echo $q;",
            "t.php")
        assert any(c.vuln_class == "xss" for c in found)

    def test_static_call_not_mistaken_for_label(self):
        # "A::f()" must still parse as a static call ("::"
        # lexes as one token, so the label rule cannot fire)
        program = parse("<?php A::f();", "t.php")
        assert isinstance(program.body[0].expr, ast.StaticCall)


# ---------------------------------------------------------------------------
# statement-level error recovery
# ---------------------------------------------------------------------------

class TestRecovery:
    DAMAGED = ("<?php\n"
               "$theme = = 'dark';\n"          # damaged statement
               "$q = $_GET['q'];\n"
               "echo $q;\n")

    def test_parse_with_recovery_salvages_the_rest(self):
        program, warnings = parse_with_recovery(self.DAMAGED, "t.php")
        assert len(warnings) == 1
        kinds = [type(n).__name__ for n in program.body]
        assert kinds.count("ExpressionStatement") >= 1
        assert any(isinstance(n, ast.Echo) for n in program.body)

    def test_strict_parse_still_raises(self):
        with pytest.raises(PhpSyntaxError):
            parse(self.DAMAGED, "t.php")

    def test_detector_reports_warning_and_candidates(self):
        candidates, warnings = \
            Wape().fused_detector.detect_source_recovering(
                self.DAMAGED, "t.php")
        assert len(warnings) == 1
        assert any(c.vuln_class == "xss" for c in candidates)

    def test_fully_broken_file_still_escalates_to_error(self):
        # nothing salvageable -> recovery re-raises: the file must stay
        # a parse *error*, not become a warning with zero findings
        with pytest.raises(PhpSyntaxError):
            Wape().fused_detector.detect_source_recovering(
                "<?php if ( { {{", "t.php")

    def test_lexer_errors_stay_fatal(self):
        with pytest.raises(PhpSyntaxError):
            parse_with_recovery('<?php echo "unterminated;', "t.php")

    def test_recovery_inside_function_body(self):
        source = ("<?php function f() { $x = = 1; return $_GET['p']; }\n"
                  "echo f();")
        program, warnings = parse_with_recovery(source, "t.php")
        assert len(warnings) == 1
        candidates, _ = Wape().fused_detector.detect_source_recovering(
            source, "t.php")
        assert any(c.vuln_class == "xss" for c in candidates)

    def test_warning_cap_escalates(self):
        from repro.php.parser import Parser
        damaged = "<?php\n" + "$a = = 1;\n" * (Parser.MAX_WARNINGS + 5)
        with pytest.raises(PhpSyntaxError):
            parse_with_recovery(damaged, "t.php")

    def test_file_result_carries_warning_fields(self, tmp_path):
        target = tmp_path / "legacy.php"
        target.write_text(self.DAMAGED)
        report = Wape().analyze_tree(str(tmp_path), ScanOptions(jobs=1))
        entry = report.files[0]
        assert entry.parse_error is None
        assert entry.parse_warning
        assert entry.recovered_statements == 1
        assert any(o.vuln_class == "xss" for o in entry.outcomes)


# ---------------------------------------------------------------------------
# unparse -> reparse structural identity (ISSUE 5 satellite)
# ---------------------------------------------------------------------------

class TestRoundTripIdentity:
    """``parse(unparse(parse(src)))`` must equal ``parse(src)``.

    This is the structural guard behind the slotted-lexer/parser rewrite:
    any change to token boundaries, operator precedence or node layout
    shows up as a structural diff here before it shows up as a wrong
    finding.  Positions are excluded (unparsing reflows the source).
    """

    CORPUS = [
        # operator precedence and associativity (exercises the flattened
        # precedence-climbing loop)
        "<?php $x = 1 + 2 * 3 - 4 / 2 % 3;",
        "<?php while ($a and $b xor $c or !$d) { f(); }",
        "<?php $s = 'a' . 'b' . $c . ($d . 'e');",
        "<?php $y = 1 < 2 == 3 >= 4 !== 5 <=> 6;",
        "<?php $m = $a ?? $b ?? $c; $n = $p ?: $q;",
        "<?php $t = $a ? $b : ($c ? $d : $e);",
        "<?php $z = 2 ** 3 ** 2; $w = -$x + ~$y;",
        "<?php $r = 1 << 2 | 3 & 4 ^ 5 >> 1;",
        # casts, numbers, strings (master-regex alternative ordering)
        "<?php $i = (int) '42'; $f = (float) $x; $b = (bool) $y;",
        "<?php $n = 0x1F + 0b101 + 1.5e3 + .25;",
        "<?php $s = \"pre $name mid {$arr['k']} post\\n\";",
        "<?php $q = 'it\\'s'; $h = <<<EOT\nline $v\nEOT;",
        "<?php echo `ls -l $dir`;",
        # statements and control flow
        ("<?php foreach ($rows as $k => &$v) { if ($k) continue; "
         "unset($v); } while ($i--) do { $j++; } while ($j < 3);"),
        ("<?php switch ($x) { case 1: echo 'a'; break; "
         "default: echo 'z'; }"),
        ("<?php try { f(); } catch (A | B $e) { g($e); } "
         "finally { h(); }"),
        ("<?php function f(int $a, ...$rest) { static $n = 0; "
         "return $a + $n; }"),
        ("<?php class C extends B implements I { const K = 1; "
         "public static $p = []; function m() { return self::K; } }"),
        ("<?php $fn = function ($x) use (&$acc) { $acc[] = $x; }; "
         "$a = fn($y) => $y * 2;"),
        "<?php list($a, , $b) = $pair; [$c, $d] = $pair;",
        "<?php $arr = ['k' => 1, 2, 'n' => [3, 4]]; echo $arr['k'];",
        "<?php $o->p->q($r)->s[$t] = A::f($u)::$v;",
        "<?php if ($a): echo 1; elseif ($b): echo 2; "
        "else: echo 3; endif;",
        # tag interleaving (InlineHTML text compared whitespace-stripped)
        "pre<?= $x ?>post",
        "<?php echo 1; ?>\n<hr>\n<?php echo 2;",
        # the existing corpus shapes
        TestAnonymousClass.SOURCE,
        TestGoto.SOURCE,
    ]

    @pytest.mark.parametrize("source", CORPUS,
                             ids=range(len(CORPUS)))
    def test_roundtrip_is_structurally_identical(self, source):
        first = parse(source, "t.php")
        second = parse(unparse(first), "t.php")
        assert structural_dump(second) == structural_dump(first)

    def test_dump_distinguishes_structures(self):
        # sanity: the dump is not trivially equal for different code
        a = parse("<?php $x = 1 + 2 * 3;", "t.php")
        b = parse("<?php $x = (1 + 2) * 3;", "t.php")
        assert structural_dump(a) != structural_dump(b)

    def test_dump_ignores_positions(self):
        a = parse("<?php $x = 1;", "t.php")
        b = parse("<?php\n\n   $x = 1;", "t.php")
        assert structural_dump(a) == structural_dump(b)
