"""Grammar regression corpus (ISSUE 3 satellites).

Small real-world PHP shapes the frontend used to reject or crash on:
interleaved HTML inside braced blocks, anonymous classes through the
unparser, binary-string literals, ``goto``/``label:`` statements, and
statement-level error recovery (a damaged region yields a warning while
the rest of the file is still parsed and analyzed).
"""

from __future__ import annotations

import pytest

from repro.exceptions import PhpSyntaxError
from repro.php import ast, parse, parse_with_recovery, tokenize, unparse
from repro.tool import Wape
from repro.analysis.options import ScanOptions


def roundtrip(source: str) -> ast.Program:
    """Unparse then re-parse: the output must stay valid PHP."""
    program = parse(source, "t.php")
    return parse(unparse(program), "t.php")


# ---------------------------------------------------------------------------
# interleaved HTML
# ---------------------------------------------------------------------------

class TestInterleavedHtml:
    def test_html_inside_if_block(self):
        program = parse(
            "<?php if ($a) { ?><b>yes</b><?php } else { ?>no<?php } ?>",
            "t.php")
        assert any(isinstance(n, ast.If) for n in program.body)

    def test_html_between_switch_brace_and_cases(self):
        source = ("<?php switch ($x) { ?>\n<!-- legacy -->\n"
                  "<?php case 1: echo 'one'; break; default: echo 'n'; }")
        program = parse(source, "t.php")
        switch = next(n for n in program.body
                      if isinstance(n, ast.Switch))
        assert len(switch.cases) == 2

    def test_html_inside_function_body(self):
        source = "<?php function f() { ?><hr><?php return 1; }"
        program = parse(source, "t.php")
        decl = next(n for n in program.body
                    if isinstance(n, ast.FunctionDecl))
        assert any(isinstance(n, ast.Return) for n in decl.body)


# ---------------------------------------------------------------------------
# anonymous classes
# ---------------------------------------------------------------------------

class TestAnonymousClass:
    SOURCE = ("<?php $h = new class(1) extends Base implements Loggable {"
              " public $level = 1;"
              " function log($m) { return $m; } };")

    def test_parses(self):
        program = parse(self.SOURCE, "t.php")
        assign = program.body[0].expr
        assert isinstance(assign.value, ast.New)
        assert isinstance(assign.value.cls, ast.ClassDecl)

    def test_unparse_does_not_crash_and_roundtrips(self):
        # regression: unparse() raised TypeError ("cannot unparse
        # ClassDecl") on new-class expressions
        program = roundtrip(self.SOURCE)
        assign = program.body[0].expr
        decl = assign.value.cls
        assert decl.parent == "Base"
        assert decl.interfaces == ["Loggable"]
        assert len(decl.members) == 2

    def test_unparse_empty_anon_class(self):
        program = roundtrip("<?php $o = new class {};")
        assert isinstance(program.body[0].expr.value.cls, ast.ClassDecl)


# ---------------------------------------------------------------------------
# binary strings
# ---------------------------------------------------------------------------

class TestBinaryStrings:
    @pytest.mark.parametrize("literal, value", [
        ('b"abc"', "abc"),
        ("b'abc'", "abc"),
        ('B"x"', "x"),
        ("B'x'", "x"),
    ])
    def test_prefix_is_dropped(self, literal, value):
        program = parse(f"<?php $s = {literal};", "t.php")
        assert program.body[0].expr.value.value == value

    def test_bare_b_is_still_an_identifier(self):
        program = parse("<?php $x = b;", "t.php")
        assert isinstance(program.body[0].expr.value, ast.ConstFetch)

    def test_b_function_call_unaffected(self):
        tokens = tokenize("<?php b($x);", "t.php")
        assert any(t.value == "b" for t in tokens)

    def test_roundtrip(self):
        program = roundtrip('<?php echo b"safe";')
        assert program.body[0].exprs[0].value == "safe"


# ---------------------------------------------------------------------------
# goto / labels
# ---------------------------------------------------------------------------

class TestGoto:
    SOURCE = ("<?php start:\n"
              "$i = $i + 1;\n"
              "if ($i < 3) { goto start; }\n"
              "echo $i;")

    def test_parses(self):
        program = parse(self.SOURCE, "t.php")
        assert isinstance(program.body[0], ast.Label)
        assert program.body[0].name == "start"
        gotos = [n for n in program.body[2].then
                 if isinstance(n, ast.Goto)]
        assert gotos and gotos[0].label == "start"

    def test_roundtrip(self):
        text = unparse(parse(self.SOURCE, "t.php"))
        assert "goto start;" in text
        assert "start:" in text
        parse(text, "t.php")

    def test_taint_flows_past_labels(self):
        found = Wape().fused_detector.detect_source(
            "<?php retry: $q = $_GET['q']; goto done; done: echo $q;",
            "t.php")
        assert any(c.vuln_class == "xss" for c in found)

    def test_static_call_not_mistaken_for_label(self):
        # "A::f()" must still parse as a static call ("::"
        # lexes as one token, so the label rule cannot fire)
        program = parse("<?php A::f();", "t.php")
        assert isinstance(program.body[0].expr, ast.StaticCall)


# ---------------------------------------------------------------------------
# statement-level error recovery
# ---------------------------------------------------------------------------

class TestRecovery:
    DAMAGED = ("<?php\n"
               "$theme = = 'dark';\n"          # damaged statement
               "$q = $_GET['q'];\n"
               "echo $q;\n")

    def test_parse_with_recovery_salvages_the_rest(self):
        program, warnings = parse_with_recovery(self.DAMAGED, "t.php")
        assert len(warnings) == 1
        kinds = [type(n).__name__ for n in program.body]
        assert kinds.count("ExpressionStatement") >= 1
        assert any(isinstance(n, ast.Echo) for n in program.body)

    def test_strict_parse_still_raises(self):
        with pytest.raises(PhpSyntaxError):
            parse(self.DAMAGED, "t.php")

    def test_detector_reports_warning_and_candidates(self):
        candidates, warnings = \
            Wape().fused_detector.detect_source_recovering(
                self.DAMAGED, "t.php")
        assert len(warnings) == 1
        assert any(c.vuln_class == "xss" for c in candidates)

    def test_fully_broken_file_still_escalates_to_error(self):
        # nothing salvageable -> recovery re-raises: the file must stay
        # a parse *error*, not become a warning with zero findings
        with pytest.raises(PhpSyntaxError):
            Wape().fused_detector.detect_source_recovering(
                "<?php if ( { {{", "t.php")

    def test_lexer_errors_stay_fatal(self):
        with pytest.raises(PhpSyntaxError):
            parse_with_recovery('<?php echo "unterminated;', "t.php")

    def test_recovery_inside_function_body(self):
        source = ("<?php function f() { $x = = 1; return $_GET['p']; }\n"
                  "echo f();")
        program, warnings = parse_with_recovery(source, "t.php")
        assert len(warnings) == 1
        candidates, _ = Wape().fused_detector.detect_source_recovering(
            source, "t.php")
        assert any(c.vuln_class == "xss" for c in candidates)

    def test_warning_cap_escalates(self):
        from repro.php.parser import Parser
        damaged = "<?php\n" + "$a = = 1;\n" * (Parser.MAX_WARNINGS + 5)
        with pytest.raises(PhpSyntaxError):
            parse_with_recovery(damaged, "t.php")

    def test_file_result_carries_warning_fields(self, tmp_path):
        target = tmp_path / "legacy.php"
        target.write_text(self.DAMAGED)
        report = Wape().analyze_tree(str(tmp_path), ScanOptions(jobs=1))
        entry = report.files[0]
        assert entry.parse_error is None
        assert entry.parse_warning
        assert entry.recovered_statements == 1
        assert any(o.vuln_class == "xss" for o in entry.outcomes)
