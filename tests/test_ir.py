"""Unit tests for the flat taint IR lowering (:mod:`repro.ir`).

The differential oracle suite (``test_ir_oracle.py``) pins the engine's
findings to the AST walker; these tests pin the *structural* contracts of
the lowered form itself: linear executability (every JUMP skips exactly
the span region emitted after it), register discipline, module layout,
config independence, and the disassembler used by ``docs/ir.md``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.ir import IR_FORMAT, IRModule, disassemble, lower_program
from repro.ir.opcodes import (
    ASSIGN,
    CALL,
    IF,
    JUMP,
    LOOP,
    OPNAMES,
    SINK,
    SOURCE,
    IfMeta,
    LoopMeta,
    SwitchMeta,
    TryMeta,
)
from repro.php.parser import parse_with_recovery


def lower(source: str) -> IRModule:
    program, warnings = parse_with_recovery(source, "test.php")
    assert warnings == []
    return lower_program(program)


def spans_of(module: IRModule) -> list[tuple[int, int]]:
    """Every span region referenced by structured-control metas."""
    spans = [module.top_span]
    spans.extend({id(fn): fn.span
                  for fn in module.functions.values()}.values())
    for instr in module.code:
        meta = instr.extra
        if isinstance(meta, IfMeta):
            spans.append(meta.then_span)
            for cond_span, body_span in meta.elifs:
                spans.extend((cond_span, body_span))
            if meta.else_span is not None:
                spans.append(meta.else_span)
        elif isinstance(meta, LoopMeta):
            spans.append(meta.body_span)
            if meta.cond_span is not None:
                spans.append(meta.cond_span)
            if meta.step_span is not None:
                spans.append(meta.step_span)
        elif isinstance(meta, SwitchMeta):
            for test_span, body_span in meta.cases:
                if test_span is not None:
                    spans.append(test_span)
                spans.append(body_span)
        elif isinstance(meta, TryMeta):
            spans.extend(meta.catch_spans)
    return spans


class TestModuleLayout:
    def test_empty_program(self):
        module = lower("<?php\n")
        assert module.top_span == (0, 0)
        assert module.functions == {}
        assert module.n_regs >= 1
        assert module.version == IR_FORMAT

    def test_straight_line_instruction_order(self):
        module = lower("<?php $q = $_GET['q']; echo $q;\n")
        start, end = module.top_span
        ops = [i.op for i in module.code[start:end]]
        # read the superglobal, assign it, read $q, sink it — in the
        # walker's evaluation order
        assert ops.index(ASSIGN) < ops.index(SINK)
        sink = next(i for i in module.code if i.op == SINK)
        assert sink.name == "echo"
        assert sink.line == 1

    def test_functions_are_aliased_not_duplicated(self):
        module = lower(
            "<?php class A { function f($x) { return $x; } }\n")
        assert set(module.functions) == {"a::f", "f"}
        assert module.functions["a::f"] is module.functions["f"]
        assert module.functions["f"].param_names == ("x",)

    def test_spans_are_within_code_and_well_formed(self):
        module = lower(
            "<?php\n"
            "function g($a) { if ($a) { return $a; } return ''; }\n"
            "while ($x) { $x = g($_GET['x']); }\n"
            "try { echo $x; } catch (Exception $e) { echo 'no'; }\n"
            "switch ($x) { case 1: echo $x; break; default: break; }\n")
        for start, end in spans_of(module):
            assert 0 <= start <= end <= len(module.code)


class TestJumpLinearity:
    """A JUMP before every span region keeps the stream executable."""

    def naive_run(self, module: IRModule) -> list[int]:
        """Walk the top-level span following only JUMPs.

        Function bodies lower *before* the top span and are only ever
        entered through a CALL, so the walk starts at the top span.
        """
        visited = []
        pc, fuel = module.top_span[0], len(module.code) * 2 + 10
        while pc < module.top_span[1] and fuel:
            fuel -= 1
            visited.append(pc)
            instr = module.code[pc]
            pc = instr.a if instr.op == JUMP else pc + 1
        assert fuel, "JUMP cycle: linear walk did not terminate"
        return visited

    @pytest.mark.parametrize("source", [
        "<?php if ($a) { echo $a; } else { echo 'b'; }\n",
        "<?php if ($a) echo $a; elseif ($b) echo $b; else echo 'c';\n",
        "<?php while ($a) { $a = $a . 'x'; }\n",
        "<?php for ($i = 0; $i < 3; $i++) { echo $i; }\n",
        "<?php foreach ($rows as $k => $v) { echo $v; }\n",
        "<?php do { echo $a; } while ($a);\n",
        "<?php switch ($a) { case 1: echo $a; default: echo 'd'; }\n",
        "<?php try { echo $a; } catch (E $e) { echo 'c'; }\n",
        "<?php function f($x) { while ($x) { echo $x; } }\n",
        "<?php $f = function ($x) use ($y) { echo $x . $y; };\n",
    ])
    def test_linear_walk_skips_all_span_regions(self, source):
        module = lower(source)
        visited = set(self.naive_run(module))
        # the linear walk must never fall *into* a structured span:
        # span regions are only executed via their owning meta
        for start, end in spans_of(module):
            if (start, end) == module.top_span:
                continue
            body = set(range(start, end))
            entered = visited & body
            assert not entered, (
                f"linear walk entered span ({start}, {end}) at "
                f"{sorted(entered)}:\n{disassemble(module)}")

    def test_jump_targets_land_inside_code(self):
        module = lower(
            "<?php if ($a) { while ($b) { echo $b; } } "
            "foreach ($c as $d) { echo $d; }\n")
        for instr in module.code:
            if instr.op == JUMP:
                assert 0 < instr.a <= len(module.code)


class TestRegisters:
    def test_every_dst_register_is_in_range(self):
        module = lower(
            "<?php $a = $_GET['a'] . $_POST['b']; echo f($a, $a);\n")
        for instr in module.code:
            assert 0 <= instr.dst < module.n_regs
            assert instr.a <= max(module.n_regs, len(module.code))

    def test_expressions_get_fresh_registers(self):
        # two reads of the same variable still get distinct registers:
        # slots are static single-use, the *env* carries identity
        module = lower("<?php echo $q . $q;\n")
        dsts = [i.dst for i in module.code if i.op == SOURCE]
        assert len(dsts) == len(set(dsts)) == 2
        assert all(d != 0 for d in dsts)  # r0 is the constant EMPTY

    def test_register_zero_is_never_written(self):
        module = lower(
            "<?php function f($x) { return $x; } "
            "$y = f($_GET['y']); echo $y;\n")
        writes = [i for i in module.code
                  if i.dst == 0 and i.op in (SOURCE, ASSIGN, CALL)]
        assert writes == []


class TestConfigIndependence:
    def test_lowering_interns_no_knowledge(self):
        # the same module must serve every DetectorConfig: nothing in
        # the instruction stream may say "this is a source/sink/filter"
        source = ("<?php $q = mysql_query($_GET['q']); "
                  "echo htmlentities($q);\n")
        module = lower(source)
        calls = {i.name for i in module.code if i.op == CALL}
        assert {"mysql_query", "htmlentities"} <= calls
        # both calls lower to the identical shape — no special-casing
        shapes = {i.op for i in module.code
                  if i.name in ("mysql_query", "htmlentities")}
        assert shapes == {CALL}

    def test_module_is_picklable_for_the_cache_tier(self):
        module = lower(
            "<?php function f($x) { if ($x) { return $x; } } "
            "foreach ($a as $b) { echo f($b); }\n")
        clone = pickle.loads(pickle.dumps(module))
        assert len(clone.code) == len(module.code)
        assert clone.version == IR_FORMAT
        assert set(clone.functions) == set(module.functions)


class TestDisassembler:
    def test_listing_covers_every_instruction(self):
        module = lower(
            "<?php if ($a) { echo $_GET['x']; } else { echo 'ok'; }\n")
        text = disassemble(module)
        lines = text.splitlines()
        assert f"{len(module.code)} instrs" in lines[0]
        numbered = [line for line in lines if ": " in line
                    and line.split(":")[0].strip().isdigit()]
        assert len(numbered) == len(module.code)
        assert any(OPNAMES[IF] in line for line in numbered)

    def test_opnames_table_is_total(self):
        sources = [
            "<?php if ($a) echo $a;\n",
            "<?php while ($a) { $a[] = $b; }\n",
            "<?php list($a, $b) = $_GET; unset($a); echo (int) $b;\n",
            "<?php class C { static $p; } C::$p = 1; echo C::$p;\n",
        ]
        for source in sources:
            for instr in lower(source).code:
                assert instr.op in OPNAMES
