"""Tests for the Table I symptom catalog and attribute schemes."""

import numpy as np
import pytest

from repro.mining import (
    CATEGORY_SQL,
    CATEGORY_STRING,
    CATEGORY_VALIDATION,
    NewAttributeScheme,
    OriginalAttributeScheme,
    all_symptoms,
    attribute_groups,
    describe_scheme,
    get_symptom,
    new_symptoms,
    original_symptoms,
    scheme_for,
    symptoms_by_category,
)


class TestTable1Structure:
    def test_sixty_symptoms_total(self):
        # 61 attributes = 60 symptom attributes + the class attribute
        assert len(all_symptoms()) == 60

    def test_twenty_four_original_symptoms(self):
        # the paper: 15 feature attributes representing 24 symptoms
        assert len(original_symptoms()) == 24

    def test_new_symptom_count(self):
        assert len(new_symptoms()) == 36

    def test_categories_cover_everything(self):
        total = sum(len(symptoms_by_category(c)) for c in
                    (CATEGORY_VALIDATION, CATEGORY_STRING, CATEGORY_SQL))
        assert total == 60

    def test_fifteen_attribute_groups(self):
        groups = attribute_groups()
        assert len(groups) == 15
        # every symptom belongs to exactly one group
        assert sum(len(v) for v in groups.values()) == 60

    def test_specific_new_symptoms_from_paper(self):
        names = {s.name for s in new_symptoms()}
        # right-hand column of Table I (a sample)
        for expected in ("is_integer", "is_long", "is_real", "is_scalar",
                         "preg_match_all", "implode", "join", "str_pad",
                         "preg_filter", "str_shuffle", "chunk_split",
                         "rtrim", "ltrim", "FROM", "AVG", "COUNT"):
            assert expected in names, expected

    def test_specific_original_symptoms_from_paper(self):
        names = {s.name for s in original_symptoms()}
        for expected in ("is_numeric", "ctype_digit", "intval", "isset",
                         "preg_match", "strcmp", "substr", "concat_op",
                         "str_replace", "trim"):
            assert expected in names, expected

    def test_alias_resolution(self):
        assert get_symptom("die").name == "exit"
        assert get_symptom("md5") is None  # explicitly not a symptom (§V-A)
        assert get_symptom("sizeof") is None
        assert get_symptom("nonexistent_fn") is None


class TestAttributeSchemes:
    def test_new_scheme_width(self):
        scheme = NewAttributeScheme()
        assert scheme.width == 60
        assert describe_scheme(scheme)["attributes_with_class"] == 61

    def test_original_scheme_width(self):
        scheme = OriginalAttributeScheme()
        assert scheme.width == 15
        assert describe_scheme(scheme)["attributes_with_class"] == 16

    def test_new_scheme_one_bit_per_symptom(self):
        scheme = NewAttributeScheme()
        vec = scheme.vectorize({"is_numeric", "trim"})
        assert vec.sum() == 2
        assert vec[scheme.names.index("is_numeric")] == 1

    def test_original_scheme_groups_symptoms(self):
        scheme = OriginalAttributeScheme()
        # two type-checking symptoms collapse into one attribute bit
        vec = scheme.vectorize({"is_numeric", "ctype_digit"})
        assert vec.sum() == 1
        assert vec[scheme.names.index("type_checking")] == 1

    def test_original_scheme_blind_to_new_symptoms(self):
        scheme = OriginalAttributeScheme()
        # is_integer is a NEW symptom: the old tool does not see it
        vec = scheme.vectorize({"is_integer"})
        assert vec.sum() == 0
        assert not scheme.recognizes("is_integer")
        assert scheme.recognizes("is_numeric")

    def test_new_scheme_sees_new_symptoms(self):
        scheme = NewAttributeScheme()
        assert scheme.vectorize({"is_integer"}).sum() == 1

    def test_unknown_symptom_ignored(self):
        for scheme in (NewAttributeScheme(), OriginalAttributeScheme()):
            assert scheme.vectorize({"never_heard_of_it"}).sum() == 0

    def test_vectorize_many(self):
        scheme = NewAttributeScheme()
        X = scheme.vectorize_many([frozenset({"trim"}),
                                   frozenset({"isset", "FROM"})])
        assert X.shape == (2, 60)
        assert X[0].sum() == 1 and X[1].sum() == 2

    def test_vectorize_many_empty(self):
        assert NewAttributeScheme().vectorize_many([]).shape == (0, 60)

    def test_scheme_factory(self):
        assert isinstance(scheme_for("new"), NewAttributeScheme)
        assert isinstance(scheme_for("original"), OriginalAttributeScheme)
        with pytest.raises(ValueError):
            scheme_for("v3")

    def test_vectors_are_binary(self):
        scheme = NewAttributeScheme()
        vec = scheme.vectorize(set(s.name for s in all_symptoms()))
        assert set(np.unique(vec).tolist()) == {1.0}
