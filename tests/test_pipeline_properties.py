"""Property-based tests over the whole pipeline (DESIGN.md §5 invariants)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Detector, extend_config, generate_detector
from repro.corrector import CodeCorrector
from repro.corpus import (
    SUPPORTED_CLASSES,
    benign_snippet,
    fp_snippet,
    page_wrapper,
    vuln_snippet,
)
from repro.php import parse, unparse
from repro.vulnerabilities import build_submodules, wape_registry
from repro.vulnerabilities.catalog import sqli_info

SQLI_CONFIG = sqli_info().config


@st.composite
def corpus_pages(draw):
    """A page assembled from random corpus snippets."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=1, max_value=4))
    parts = []
    for _ in range(n):
        kind = draw(st.sampled_from(["vuln", "fp", "benign"]))
        if kind == "vuln":
            cls = draw(st.sampled_from(
                [c for c in SUPPORTED_CLASSES if c != "ei"]))
            parts.append(vuln_snippet(cls, rng))
        elif kind == "fp":
            parts.append(fp_snippet(
                draw(st.sampled_from(["old", "new", "custom"])), rng))
        else:
            parts.append(benign_snippet(rng))
    return page_wrapper(parts, "prop", rng)


@pytest.fixture(scope="module")
def full_detector():
    registry = wape_registry()
    return Detector([i.config for i in registry
                     if i.config.sinks or i.config.source_functions])


class TestParserProperties:
    @given(corpus_pages())
    @settings(max_examples=60, deadline=None)
    def test_unparse_fixpoint_on_realistic_pages(self, source):
        once = unparse(parse(source))
        assert unparse(parse(once)) == once


class TestEngineProperties:
    @given(corpus_pages())
    @settings(max_examples=50, deadline=None)
    def test_analysis_deterministic(self, source):
        det = Detector([SQLI_CONFIG])
        a = det.detect_source(source)
        b = det.detect_source(source)
        assert [c.key() for c in a] == [c.key() for c in b]

    @given(corpus_pages())
    @settings(max_examples=40, deadline=None)
    def test_adding_entry_points_is_monotone(self, source):
        """More entry points can only add candidates, never remove."""
        base = Detector([SQLI_CONFIG])
        extended = Detector([extend_config(
            SQLI_CONFIG, entry_points={"_ENV", "_SESSION"})])
        base_keys = {c.key() for c in base.detect_source(source)}
        ext_keys = {c.key() for c in extended.detect_source(source)}
        assert base_keys <= ext_keys

    @given(corpus_pages())
    @settings(max_examples=40, deadline=None)
    def test_adding_sanitizers_is_antitone(self, source):
        """More sanitizers can only remove candidates, never add."""
        base = Detector([SQLI_CONFIG])
        hardened = Detector([extend_config(
            SQLI_CONFIG,
            sanitizers={"trim", "substr", "str_replace", "explode"})])
        base_keys = {c.key() for c in base.detect_source(source)}
        hard_keys = {c.key() for c in hardened.detect_source(source)}
        assert hard_keys <= base_keys

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=40, deadline=None)
    def test_candidate_paths_well_formed(self, seed):
        rng = random.Random(seed)
        src = page_wrapper([vuln_snippet("sqli", rng),
                            fp_snippet("old", rng)], "p", rng)
        for cand in Detector([SQLI_CONFIG]).detect_source(src):
            assert cand.path[0].kind == "source"
            assert cand.path[-1].kind == "sink"
            assert cand.path[-1].detail == cand.sink_name
            assert all(step.line >= 0 for step in cand.path)


class TestCorrectorProperties:
    @given(st.sampled_from([c for c in SUPPORTED_CLASSES
                            if c not in ("ei", "nosqli", "wpsqli")]),
           st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=60, deadline=None)
    def test_fix_then_reanalyze_is_clean(self, class_id, seed,
                                         ):
        registry = wape_registry()
        detector = Detector([i.config for i in registry
                             if i.config.sinks
                             or i.config.source_functions])
        rng = random.Random(seed)
        src = page_wrapper([vuln_snippet(class_id, rng)], "p", rng)
        cands = detector.detect_source(src)
        assert cands, (class_id, seed)
        corrector = CodeCorrector()
        fixed = corrector.correct_source(src, cands)
        assert fixed.changed
        post = detector.detect_source(fixed.source)
        assert [c for c in post if c.vuln_class == class_id] == []

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=30, deadline=None)
    def test_correction_idempotent(self, seed):
        detector = Detector([SQLI_CONFIG])
        rng = random.Random(seed)
        src = page_wrapper([vuln_snippet("sqli", rng)], "p", rng)
        corrector = CodeCorrector()
        once = corrector.correct_source(src, detector.detect_source(src))
        again = corrector.correct_source(
            once.source, detector.detect_source(once.source))
        assert not again.changed
        assert again.source == once.source


class TestWeaponEquivalence:
    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=30, deadline=None)
    def test_generated_equals_builtin_detector(self, seed):
        """DESIGN.md invariant: a weapon built from (ep, ss, san) detects
        exactly what an equivalently-configured builtin detector does."""
        rng = random.Random(seed)
        src = page_wrapper([vuln_snippet("sqli", rng),
                            benign_snippet(rng)], "p", rng)
        builtin = Detector([SQLI_CONFIG])
        generated = generate_detector(
            "sqli",
            [f"{s.name}:" + ",".join(map(str, s.arg_positions))
             if s.arg_positions else s.name
             for s in SQLI_CONFIG.sinks],
            sanitizers=list(SQLI_CONFIG.sanitizers),
        )
        assert {c.key() for c in builtin.detect_source(src)} == \
            {c.key() for c in generated.detect_source(src)}
