"""Parse-once frontend: AstStore identity and the on-disk AST cache.

The tentpole guarantee of ISSUE 5: one scan lexes and parses each unique
file content exactly once.  The include resolver, the include context and
the fused detector all draw from one shared :class:`repro.php.AstStore`,
so the resolve phase hands its ASTs to the scan phase.  These tests pin
that property down by counting actual ``Parser.parse_program`` calls,
not just the telemetry counters that report it.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.options import ScanOptions
from repro.analysis.pipeline import ScanScheduler
from repro.exceptions import PhpSyntaxError
from repro.php import AstCache, AstStore, Parser
from repro.php.parser import parse_with_recovery


VULN = "<?php $q = $_GET['q']; echo $q;\n"
CLEAN = "<?php echo htmlentities($_GET['x']);\n"


# ---------------------------------------------------------------------------
# AstStore unit behavior
# ---------------------------------------------------------------------------

class TestAstStore:
    def test_memory_memo_parses_each_content_once(self, monkeypatch):
        calls = []
        original = Parser.parse_program

        def counted(self):
            calls.append(self.filename)
            return original(self)

        monkeypatch.setattr(Parser, "parse_program", counted)
        store = AstStore()
        store.parse_recovering(VULN, "a.php")
        store.parse_recovering(VULN, "b.php")   # same content, other path
        store.parse_recovering(CLEAN, "c.php")
        assert calls == ["a.php", "c.php"]
        assert store.parses == 2
        assert store.reparse_avoided == 1

    def test_results_match_parse_with_recovery(self):
        store = AstStore()
        program, warnings = store.parse_recovering(VULN, "a.php")
        direct_program, direct_warnings = parse_with_recovery(
            VULN, "a.php")
        assert type(program).__name__ == "Program"
        assert len(program.body) == len(direct_program.body)
        assert warnings == direct_warnings == []

    def test_warnings_reattributed_to_requesting_filename(self):
        damaged = "<?php $a = = 1;\necho 'ok';\n"
        store = AstStore()
        _, first = store.parse_recovering(damaged, "first.php")
        _, second = store.parse_recovering(damaged, "second.php")
        assert first[0].filename == "first.php"
        assert second[0].filename == "second.php"
        assert (first[0].message, first[0].line) == \
            (second[0].message, second[0].line)

    def test_fatal_errors_are_memoized_and_reraised(self, monkeypatch):
        import repro.php.parser as parser_module

        calls = []
        original = parser_module.tokenize

        def counted(source, filename="<source>"):
            calls.append(filename)
            return original(source, filename)

        # the error below is a *lexer* error, so count tokenize calls
        monkeypatch.setattr(parser_module, "tokenize", counted)
        store = AstStore()
        broken = '<?php echo "unterminated;'  # lexer errors stay fatal
        with pytest.raises(PhpSyntaxError) as first:
            store.parse_recovering(broken, "a.php")
        with pytest.raises(PhpSyntaxError) as second:
            store.parse_recovering(broken, "b.php")
        assert calls == ["a.php"]  # the hit re-raises without re-lexing
        assert first.value.filename == "a.php"
        assert second.value.filename == "b.php"
        assert first.value.message == second.value.message

    def test_metrics_sink_receives_counters(self):
        from repro.telemetry.metrics import Metrics

        metrics = Metrics()
        store = AstStore(metrics=metrics)
        store.parse_recovering(VULN, "a.php")
        store.parse_recovering(VULN, "b.php")
        assert metrics.counter("frontend_reparse_avoided").value == 1


# ---------------------------------------------------------------------------
# the on-disk tier
# ---------------------------------------------------------------------------

class TestAstCache:
    def test_disk_roundtrip_across_stores(self, tmp_path):
        cold = AstStore(disk=AstCache(str(tmp_path)))
        cold.parse_recovering(VULN, "a.php")
        assert cold.disk.puts == 1
        cold.flush()  # puts are buffered until the per-scan flush

        warm = AstStore(disk=AstCache(str(tmp_path)))
        program, warnings = warm.parse_recovering(VULN, "other.php")
        assert warm.parses == 0 and warm.disk_hits == 1
        assert len(program.body) == 2
        assert warnings == []

    def test_error_entries_roundtrip(self, tmp_path):
        broken = '<?php echo "unterminated;'  # lexer errors stay fatal
        cold = AstStore(disk=AstCache(str(tmp_path)))
        with pytest.raises(PhpSyntaxError):
            cold.parse_recovering(broken, "a.php")
        cold.flush()

        warm = AstStore(disk=AstCache(str(tmp_path)))
        with pytest.raises(PhpSyntaxError) as exc:
            warm.parse_recovering(broken, "b.php")
        assert warm.parses == 0
        assert exc.value.filename == "b.php"

    def test_corrupt_entry_is_evicted_then_reparsed(self, tmp_path):
        cache = AstCache(str(tmp_path))
        store = AstStore(disk=cache)
        store.parse_recovering(VULN, "a.php")
        key = AstStore.source_key(VULN)
        entry = os.path.join(cache.directory, key + ".pkl")
        with open(entry, "wb") as f:
            f.write(b"not a pickle")

        fresh = AstStore(disk=AstCache(str(tmp_path)))
        fresh.parse_recovering(VULN, "a.php")
        assert fresh.parses == 1          # reparsed, not served corrupt
        assert fresh.disk.evictions == 1
        assert not os.path.exists(entry) or fresh.disk.puts == 1

    def test_format_version_partitions_the_directory(self, tmp_path):
        from repro.php import AST_FORMAT

        cache = AstCache(str(tmp_path))
        assert cache.directory.endswith(f"ast-v{AST_FORMAT}")


# ---------------------------------------------------------------------------
# pipeline identity: resolve + scan share one store
# ---------------------------------------------------------------------------

def _write_project(root) -> None:
    (root / "lib.php").write_text(
        "<?php function q($x) { return $x; }\n")
    (root / "index.php").write_text(
        "<?php include 'lib.php'; $q = $_GET['q']; echo q($q);\n")
    (root / "admin.php").write_text(
        "<?php require 'lib.php'; echo q($_GET['id']);\n")
    (root / "copy.php").write_text(          # duplicate content of lib
        "<?php function q($x) { return $x; }\n")


class TestPipelineParseOnce:
    def test_scan_parses_each_unique_content_once(self, tmp_path,
                                                  monkeypatch):
        from repro.telemetry import Telemetry
        from repro.tool import Wape

        project = tmp_path / "proj"
        project.mkdir()
        _write_project(project)

        # build the tool BEFORE counting: predictor training and
        # knowledge loading may parse PHP of their own
        tool = Wape()
        calls: list[str] = []
        original = Parser.parse_program

        def counted(self):
            calls.append(self.filename)
            return original(self)

        monkeypatch.setattr(Parser, "parse_program", counted)
        telemetry = Telemetry()
        scheduler = ScanScheduler(
            tool._config_groups(), tool_version=tool.version,
            options=ScanOptions(jobs=1, telemetry=telemetry))
        tool.run_scheduler(scheduler, str(project))

        unique_contents = 3  # lib == copy byte-for-byte
        assert len(calls) == unique_contents, calls
        # resolve_includes parsed 4 files; 3 of those parses were then
        # avoided again by the scan phase (and one by the dup content)
        counters = telemetry.metrics.counters
        assert counters["frontend_reparse_avoided"].value >= 4

    def test_scan_store_serves_include_dependencies(self, tmp_path,
                                                    monkeypatch):
        # IncludeContext's dependency parses must hit the store too
        from repro.tool import Wape

        project = tmp_path / "proj"
        project.mkdir()
        _write_project(project)
        tool = Wape()

        calls: list[str] = []
        original = Parser.parse_program

        def counted(self):
            calls.append(self.filename)
            return original(self)

        monkeypatch.setattr(Parser, "parse_program", counted)
        report = tool.analyze_tree(str(project), ScanOptions(jobs=1))
        assert len(calls) == 3
        assert any(o.vuln_class == "xss"
                   for entry in report.files for o in entry.outcomes)

    def test_ast_cache_disabled_by_option(self, tmp_path):
        from repro.tool import Wape

        tool = Wape()
        cache_dir = str(tmp_path / "cache")
        on = ScanScheduler(tool._config_groups(),
                           tool_version=tool.version,
                           options=ScanOptions(cache_dir=cache_dir))
        off = ScanScheduler(tool._config_groups(),
                            tool_version=tool.version,
                            options=ScanOptions(cache_dir=cache_dir,
                                                ast_cache=False))
        none = ScanScheduler(tool._config_groups(),
                             tool_version=tool.version,
                             options=ScanOptions())
        assert on.ast_store.disk is not None
        assert off.ast_store.disk is None
        assert none.ast_store.disk is None

    def test_cli_no_ast_cache_flag(self, tmp_path, capsys):
        from repro.tool.cli import main

        project = tmp_path / "proj"
        project.mkdir()
        _write_project(project)
        cache_dir = str(tmp_path / "cache")
        code = main(["--cache-dir", cache_dir, "--no-ast-cache",
                     "--quiet", str(project)])
        assert code in (0, 1)  # findings exist -> non-zero policies vary
        assert not any(name.startswith("ast-v")
                       for name in os.listdir(cache_dir))
        code = main(["--cache-dir", cache_dir, "--quiet", str(project)])
        assert any(name.startswith("ast-v")
                   for name in os.listdir(cache_dir))

    def test_scan_populates_disk_tier_for_later_consumers(self, tmp_path):
        from repro.telemetry.metrics import Metrics
        from repro.tool import Wape

        project = tmp_path / "proj"
        project.mkdir()
        _write_project(project)
        tool = Wape()
        cache_dir = str(tmp_path / "cache")

        first = ScanScheduler(
            tool._config_groups(), tool_version=tool.version,
            options=ScanOptions(jobs=1, cache_dir=cache_dir))
        tool.run_scheduler(first, str(project))
        assert first.ast_cache.puts == 3  # one per unique content

        # a later frontend consumer over the same directory (a fresh
        # process, the daemon's warm path, ...) parses nothing: every
        # content is served from the on-disk tier.  (A full re-*scan* is
        # served even earlier, by the result cache + include-graph blob.)
        metrics = Metrics()
        warm = AstStore(disk=AstCache(cache_dir), metrics=metrics)
        for name in ("lib.php", "index.php", "admin.php", "copy.php"):
            warm.parse_recovering((project / name).read_text(), name)
        assert warm.parses == 0
        assert warm.disk_hits == 3       # copy.php reuses lib's entry
        assert warm.reparse_avoided == 1
        assert metrics.counters["ast_cache_hit"].value == 3
