"""Tests for fix templates and the code corrector."""

import pytest

from repro.analysis import Detector
from repro.corrector import (
    CodeCorrector,
    TEMPLATE_PHP_SANITIZATION,
    TEMPLATE_USER_SANITIZATION,
    TEMPLATE_USER_VALIDATION,
    build_fix,
    builtin_fixes,
    php_sanitization_fix,
    user_sanitization_fix,
    user_validation_fix,
)
from repro.exceptions import FixTemplateError
from repro.php import ast, parse
from repro.vulnerabilities import build_submodules, wape_registry


class TestTemplates:
    def test_php_sanitization_template(self):
        fix = php_sanitization_fix("san_x", "mysql_real_escape_string")
        assert fix.template == TEMPLATE_PHP_SANITIZATION
        assert "mysql_real_escape_string($value)" in fix.helper_code
        parse("<?php " + fix.helper_code)  # helper is valid PHP

    def test_user_sanitization_template(self):
        fix = user_sanitization_fix("san_y", ("\r", "\n"), " ")
        assert fix.template == TEMPLATE_USER_SANITIZATION
        assert "str_replace" in fix.helper_code
        parse("<?php " + fix.helper_code)

    def test_user_validation_template(self):
        fix = user_validation_fix("val_z", ("*", "("), "blocked")
        assert fix.template == TEMPLATE_USER_VALIDATION
        assert "strpos" in fix.helper_code
        assert "blocked" in fix.helper_code
        parse("<?php " + fix.helper_code)

    def test_build_fix_dispatch(self):
        assert build_fix("a", TEMPLATE_PHP_SANITIZATION,
                         sanitization_function="esc_sql").fix_id == "a"
        assert build_fix("b", TEMPLATE_USER_SANITIZATION,
                         malicious_chars=("\n",)).fix_id == "b"
        assert build_fix("c", TEMPLATE_USER_VALIDATION,
                         malicious_chars=("*",)).fix_id == "c"

    @pytest.mark.parametrize("bad", [
        lambda: php_sanitization_fix("x", ""),
        lambda: user_sanitization_fix("x", ()),
        lambda: user_validation_fix("x", ()),
        lambda: php_sanitization_fix("1bad", "f"),
        lambda: php_sanitization_fix("", "f"),
        lambda: build_fix("x", "no_such_template"),
        lambda: build_fix("x", TEMPLATE_PHP_SANITIZATION),
    ])
    def test_template_errors(self, bad):
        with pytest.raises(FixTemplateError):
            bad()

    def test_all_builtin_helpers_parse(self):
        for fix in builtin_fixes().values():
            parse("<?php " + fix.helper_code)

    def test_every_class_has_a_fix(self):
        fixes = builtin_fixes()
        for info in wape_registry():
            assert info.fix_id in fixes, info.class_id


@pytest.fixture(scope="module")
def wape_detector():
    registry = wape_registry()
    return Detector([i.config for i in registry if i.config.sinks
                     or i.config.source_functions])


def correct(source, detector):
    """Detect then correct; return (result, re-detection candidates)."""
    corrector = CodeCorrector()
    cands = detector.detect_source(source)
    result = corrector.correct_source(source, cands)
    post = detector.detect_source(result.source)
    return result, post


class TestCorrection:
    def test_sqli_fix_applied(self, wape_detector):
        src = "<?php mysql_query(\"SELECT a FROM t WHERE x = '\" " \
              ". $_GET['x'] . \"'\");"
        result, post = correct(src, wape_detector)
        assert result.changed
        assert "san_sqli(" in result.source
        assert "function san_sqli" in result.source
        assert [c for c in post if c.vuln_class == "sqli"] == []

    def test_xss_echo_fix(self, wape_detector):
        result, post = correct("<?php echo $_GET['m'];", wape_detector)
        assert "san_out(" in result.source
        assert [c for c in post if c.vuln_class == "xss"] == []

    def test_osci_fix(self, wape_detector):
        result, post = correct("<?php system($_GET['cmd']);",
                               wape_detector)
        assert "san_osci(" in result.source
        assert [c for c in post if c.vuln_class == "osci"] == []

    def test_include_fix(self, wape_detector):
        result, post = correct("<?php include $_GET['p'];", wape_detector)
        assert "san_mix(" in result.source
        assert [c for c in post if c.vuln_class in ("rfi", "lfi")] == []

    def test_ldapi_fix(self, wape_detector):
        src = "<?php ldap_search($ds, $base, '(u=' . $_GET['u'] . ')');"
        result, post = correct(src, wape_detector)
        assert "val_ldapi(" in result.source
        assert [c for c in post if c.vuln_class == "ldapi"] == []

    def test_hei_fix(self, wape_detector):
        result, post = correct("<?php header('X: ' . $_GET['v']);",
                               wape_detector)
        assert "san_hei(" in result.source
        assert [c for c in post if c.vuln_class == "hi"] == []

    def test_sf_fix(self, wape_detector):
        result, post = correct("<?php session_id($_GET['sid']);",
                               wape_detector)
        assert "san_sf(" in result.source
        assert [c for c in post if c.vuln_class == "sf"] == []

    def test_shell_exec_fix(self, wape_detector):
        result, post = correct("<?php $o = `ls {$_GET['d']}`;",
                               wape_detector)
        assert "san_osci(" in result.source
        assert [c for c in post if c.vuln_class == "osci"] == []

    def test_fixed_code_reparses(self, wape_detector):
        src = "<?php mysql_query('x = ' . $_GET['x']); echo $_POST['y'];"
        result, _ = correct(src, wape_detector)
        parse(result.source)

    def test_helper_inserted_once(self, wape_detector):
        src = ("<?php mysql_query('a = ' . $_GET['a']); "
               "mysql_query('b = ' . $_POST['b']);")
        result, _ = correct(src, wape_detector)
        assert result.source.count("function san_sqli") == 1

    def test_idempotent(self, wape_detector):
        src = "<?php mysql_query('x = ' . $_GET['x']);"
        once, _ = correct(src, wape_detector)
        corrector = CodeCorrector()
        cands = wape_detector.detect_source(once.source)
        twice = corrector.correct_source(once.source, cands)
        # no vulnerability remains, so nothing to correct
        assert not twice.changed

    def test_literal_args_untouched(self, wape_detector):
        src = "<?php mysql_query('p = ' . $_GET['p'], 'extra');"
        result, _ = correct(src, wape_detector)
        # the literal second argument is not wrapped
        assert "san_sqli('extra')" not in result.source

    def test_unknown_class_skipped(self):
        import dataclasses
        detector_src = "<?php mysql_query($_GET['x']);"
        from repro.vulnerabilities.catalog import sqli_info
        det = Detector([sqli_info().config])
        cands = det.detect_source(detector_src)
        weird = [dataclasses.replace(c, vuln_class="brand_new")
                 for c in cands]
        result = CodeCorrector().correct_source(detector_src, weird)
        assert not result.changed
        assert len(result.skipped) == 1

    def test_unlocatable_sink_skipped(self):
        import dataclasses
        from repro.vulnerabilities.catalog import sqli_info
        det = Detector([sqli_info().config])
        src = "<?php mysql_query($_GET['x']);"
        cands = det.detect_source(src)
        moved = [dataclasses.replace(c, sink_line=999) for c in cands]
        result = CodeCorrector().correct_source(src, moved)
        assert result.skipped and not result.changed

    def test_register_weapon_fix(self):
        from repro.corrector import php_sanitization_fix
        corrector = CodeCorrector()
        fix = php_sanitization_fix("san_custom", "my_escape")
        corrector.register_fix("customclass", fix)
        assert corrector.fix_for("customclass").fix_id == "san_custom"

    def test_correct_file_roundtrip(self, tmp_path, wape_detector):
        path = tmp_path / "vuln.php"
        path.write_text("<?php echo $_GET['m'];\n")
        cands = wape_detector.detect_file(str(path)).candidates
        result = CodeCorrector().correct_file(str(path), cands)
        assert result.changed
        assert "san_out(" in path.read_text()

    def test_html_preserved_through_correction(self, wape_detector):
        src = "<h1>Hello</h1>\n<?php echo $_GET['m']; ?>\n<footer>x</footer>"
        result, _ = correct(src, wape_detector)
        assert "<h1>Hello</h1>" in result.source
        assert "<footer>x</footer>" in result.source


class TestSubmoduleCorrectionEndToEnd:
    """Detect with sub-modules, predict, correct — the full Fig. 1 loop."""

    def test_full_pipeline(self):
        from repro.mining import new_predictor
        subs = build_submodules(wape_registry())
        src = ("<?php\n"
               "$q = $_GET['q'];\n"
               "mysql_query(\"SELECT a FROM t WHERE q = '\" . $q . \"'\");"
               "\n"
               "if (is_numeric($_GET['n'])) {\n"
               "  mysql_query(\"SELECT b FROM t WHERE n = \" "
               ". $_GET['n']);\n"
               "}\n")
        cands = []
        for sub in subs.values():
            cands.extend(sub.detect_source(src))
        predictor = new_predictor()
        real = [c for c in cands
                if not predictor.predict(c).is_false_positive]
        assert len(cands) == 2 and len(real) == 1
        result = CodeCorrector().correct_source(src, real)
        # exactly one call site fixed (the other occurrence is the helper
        # function's own declaration)
        assert result.source.count("san_sqli(") == 2
        assert result.source.count("mysql_query(san_sqli(") == 1
        # the false-positive flow is left untouched
        assert "('SELECT b FROM t WHERE n = ' . $_GET['n'])" \
            in result.source
