"""The knowledge-compiled relevance prefilter (ISSUE 10).

Two layers of guarantees under test:

* **Conservatism** — the prefilter may only skip files that provably
  cannot contain a finding.  Every adversarial spelling the engine can
  act on (mixed-case calls, markers inside otherwise-hostile syntax)
  must keep the file; spellings the engine provably cannot act on
  (concatenated sink names, variable functions, markers only inside
  comments/strings) may be skipped or kept, but the *findings* must be
  byte-identical to a ``--no-prefilter`` run either way.
* **Caching** — verdicts are memoized per content hash inside the
  result cache's knowledge-fingerprint pack, so arming a weapon (a new
  fingerprint) atomically invalidates the compiled matcher and every
  stored verdict, reclassifying files that mention the weapon's sinks.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.includes import build_include_graph
from repro.analysis.options import ScanOptions
from repro.analysis.pipeline import (
    ResultCache,
    ScanScheduler,
    config_fingerprint,
)
from repro.analysis.prefilter import (
    TIER_DEP_ONLY,
    TIER_IRRELEVANT,
    TIER_SINK_BEARING,
    KnowledgeMatcher,
    RelevancePrefilter,
    matcher_for,
)
from repro.corpus import VULNERABLE_WEBAPPS, materialize_package
from repro.tool.sarif import report_to_sarif
from repro.tool.wap import Wape

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")


@pytest.fixture(scope="module")
def tool():
    return Wape()


@pytest.fixture(scope="module")
def matcher(tool):
    groups = tool._config_groups()
    return KnowledgeMatcher(groups)


def normalized(report) -> str:
    """The report dict as canonical JSON, timing fields dropped."""
    data = report.to_dict()
    data.pop("seconds", None)
    data.get("summary", {}).pop("seconds", None)
    for entry in data.get("files", []):
        entry.pop("seconds", None)
    return json.dumps(data, sort_keys=True)


def scan_both(tool, root: str):
    """The same tree scanned with the prefilter on and off (no cache:
    cache counters legitimately differ between the two runs)."""
    on = tool.analyze_tree(root, ScanOptions(jobs=1))
    off = tool.analyze_tree(root, ScanOptions(jobs=1, prefilter=False))
    return on, off


def assert_identical(on, off):
    assert normalized(on) == normalized(off)
    # and the identity layer downstream consumers read: SARIF
    assert report_to_sarif(json.loads(normalized(on))) == \
        report_to_sarif(json.loads(normalized(off)))


# ---------------------------------------------------------------------------
# matcher units
# ---------------------------------------------------------------------------

class TestKnowledgeMatcher:
    def test_sink_names_match_case_insensitively(self, matcher):
        assert matcher.verdict(b"<?php MySQL_Query($x);")[0] is True
        assert matcher.verdict(b"<?php mysql_query($x);")[0] is True

    def test_superglobals_match_case_sensitively(self, matcher):
        # PHP variables are case-sensitive: $_get is NOT a source
        assert matcher.verdict(b"<?php $x = $_GET['a'];")[1] is True
        assert matcher.verdict(b"<?php $x = $_get['a'];")[1] is False

    def test_pseudo_sinks_have_surface_spellings(self, matcher):
        for raw in (b"<?php echo $x;", b"<?php print $x;",
                    b"<?= $x ?>", b"<?php `ls $x`;",
                    b"<?php include $x;"):
            assert matcher.verdict(raw)[0] is True, raw

    def test_word_boundaries_prevent_substring_hits(self, matcher):
        # "echoes" is not "echo"; "mysql_query_log" is not "mysql_query"
        assert matcher.verdict(b"<?php $echoes = 1;")[0] is False
        assert matcher.verdict(b"<?php mysql_query_log($x);")[0] is False

    def test_unknown_sink_kind_disables_skipping(self):
        from repro.analysis.model import DetectorConfig, SinkSpec

        cfg = DetectorConfig(class_id="zz", display_name="Z",
                             entry_points=frozenset({"_GET"}),
                             sinks=(SinkSpec("weird", kind="SINK_EVAL"),))

        class Group:
            configs = (cfg,)

        unknown = KnowledgeMatcher([Group()])
        assert unknown.always_sink is True
        assert unknown.verdict(b"<?php nothing();")[0] is True

    def test_matcher_memoized_per_fingerprint(self, tool):
        groups = tool._config_groups()
        fp = config_fingerprint(groups, tool.version)
        assert matcher_for(groups, fp) is matcher_for(groups, fp)
        other = matcher_for(groups, "different-fingerprint")
        assert other is not matcher_for(groups, fp)


# ---------------------------------------------------------------------------
# tier classification
# ---------------------------------------------------------------------------

class TestTiers:
    def test_closure_rule_and_dep_only(self, tool, tmp_path):
        (tmp_path / "lib.php").write_text(
            "<?php function getq() { return $_GET['q']; } ?>")
        (tmp_path / "main.php").write_text(
            "<?php include 'lib.php'; echo getq(); ?>")
        (tmp_path / "plain.php").write_text("<?php $a = 1 + 1; ?>")
        paths = ScanScheduler.discover(str(tmp_path))
        graph = build_include_graph(paths)
        groups = tool._config_groups()
        fp = config_fingerprint(groups, tool.version)
        prefilter = RelevancePrefilter(matcher_for(groups, fp))
        tiers = prefilter.classify(paths, graph, {})
        by_name = {os.path.basename(p): t for p, t in tiers.items()}
        # main.php: sink (echo/include) in itself, source via closure
        assert by_name["main.php"] == TIER_SINK_BEARING
        # lib.php: source but no sink of its own — summaries only
        assert by_name["lib.php"] == TIER_DEP_ONLY
        assert by_name["plain.php"] == TIER_IRRELEVANT

    def test_skipped_files_still_reported_with_loc(self, tool, tmp_path):
        (tmp_path / "skip.php").write_text("<?php\n$a = 1;\n$b = 2;\n")
        (tmp_path / "hit.php").write_text("<?php echo $_GET['x'];")
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1))
        by_name = {os.path.basename(f.filename): f for f in report.files}
        skip = by_name["skip.php"]
        assert skip.outcomes == [] and skip.parse_error is None
        assert skip.lines_of_code == 4  # newline count + 1, unparsed
        assert report.prefilter is not None
        assert report.prefilter.skipped == 1
        assert report.prefilter.sink_bearing == 1

    def test_skipped_files_never_enter_the_result_cache(self, tool,
                                                        tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "skip.php").write_text("<?php $a = 1;")
        (tree / "hit.php").write_text("<?php echo $_GET['x'];")
        cache_dir = str(tmp_path / "cache")
        report = tool.analyze_tree(
            str(tree), ScanOptions(jobs=1, cache_dir=cache_dir))
        assert report.cache.puts == 1  # hit.php only
        assert report.cache.misses == 1


# ---------------------------------------------------------------------------
# adversarial differentials: prefilter on vs off, byte-identical
# ---------------------------------------------------------------------------

class TestAdversarialDifferential:
    CASES = {
        # sink name assembled by concatenation: the engine lowers $f()
        # to CALL_FOLD and can never fire it — skipping is sound
        "concat.php": "<?php $f = 'mysql' . '_query'; $f($_GET['a']);",
        # sink name assembled by interpolation
        "interp.php": ("<?php $p = 'query'; $f = \"mysql_{$p}\"; "
                       "$f($_GET['b']);"),
        # variable function from attacker input
        "varfunc.php": "<?php $f = $_GET['f']; $f($_GET['x']);",
        # mixed-case call: PHP function names are case-insensitive,
        # the engine folds them, and so must the matcher
        "mixedcase.php": "<?php MySQL_Query($_GET['q']);",
        # sink names only inside a comment / a string literal: the
        # matcher conservatively keeps these (raw bytes cannot tell),
        # and the engine then finds nothing — identical either way
        "comment.php": "<?php // mysql_query($_GET['x'])\n$a = 1;",
        "string.php": "<?php $s = 'call mysql_query later'; $b = 2;",
        # nothing at all
        "empty.php": "<?php $c = 3;",
    }

    def test_reports_byte_identical_on_vs_off(self, tool, tmp_path):
        for name, source in self.CASES.items():
            (tmp_path / name).write_text(source)
        on, off = scan_both(tool, str(tmp_path))
        assert_identical(on, off)
        # the tree is engineered so at least something gets skipped
        assert on.prefilter.skipped > 0

    def test_mixed_case_sink_is_kept_and_found(self, tool, tmp_path):
        (tmp_path / "m.php").write_text(self.CASES["mixedcase.php"])
        on, off = scan_both(tool, str(tmp_path))
        assert_identical(on, off)
        assert len(on.outcomes) >= 1  # the finding survived the filter

    def test_demo_app_differential(self, tool):
        on, off = scan_both(tool, DEMO_APP)
        assert_identical(on, off)
        assert on.prefilter.skipped > 0

    @pytest.mark.slow
    def test_corpus_differential(self, tmp_path):
        """On/off byte-identity over the bundled vulnerable webapps,
        with every weapon armed (the widest matcher we can build)."""
        root = tmp_path / "corpus"
        root.mkdir()
        for profile in VULNERABLE_WEBAPPS[:2]:
            materialize_package(profile, str(root))
        armed = Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])
        on, off = scan_both(armed, str(root))
        assert_identical(on, off)


# ---------------------------------------------------------------------------
# verdict caching + knowledge invalidation
# ---------------------------------------------------------------------------

class TestVerdictCache:
    def test_verdicts_persist_as_blobs_in_the_pack(self, tool, tmp_path):
        groups = tool._config_groups()
        fp = config_fingerprint(groups, tool.version)
        cache = ResultCache(str(tmp_path), fp)
        prefilter = RelevancePrefilter(matcher_for(groups, fp),
                                       cache=cache)
        raw = b"<?php echo $_GET['x'];"
        digest = ResultCache.content_hash(raw)
        assert prefilter.verdict(raw, digest) == (True, True)
        cache.flush()

        # a fresh process (fresh memo) must be served from the blob,
        # never re-running the matcher
        reloaded = ResultCache(str(tmp_path), fp)
        served = RelevancePrefilter(object(), cache=reloaded)  # no matcher
        assert served.verdict(raw, digest) == (True, True)

    def test_arming_a_weapon_reclassifies(self, tmp_path):
        """The acceptance-criteria test: a file only a weapon's sinks
        make relevant is skipped when unarmed and found when armed,
        through the same cache directory."""
        tree = tmp_path / "tree"
        tree.mkdir()
        # header() is a sink only the -hei weapon declares; without it
        # there is no sink marker at all in the file
        (tree / "redirect.php").write_text(
            "<?php header('Location: ' . $_GET['to']);")
        cache_dir = str(tmp_path / "cache")

        plain = Wape()
        report = plain.analyze_tree(
            str(tree), ScanOptions(jobs=1, cache_dir=cache_dir))
        assert report.prefilter.skipped == 1
        assert report.outcomes == []

        armed = Wape(weapon_flags=["-hei"])
        report = armed.analyze_tree(
            str(tree), ScanOptions(jobs=1, cache_dir=cache_dir))
        assert report.prefilter.skipped == 0
        assert report.prefilter.sink_bearing == 1
        assert any(o.candidate.vuln_class == "hi"  # header injection
                   for o in report.outcomes)

    def test_stale_blob_shapes_are_ignored(self, tool, tmp_path):
        groups = tool._config_groups()
        fp = config_fingerprint(groups, tool.version)
        cache = ResultCache(str(tmp_path), fp)
        raw = b"<?php echo $_GET['x'];"
        digest = ResultCache.content_hash(raw)
        cache.put_blob("prefilter-" + digest, {"not": "a verdict"})
        prefilter = RelevancePrefilter(matcher_for(groups, fp),
                                       cache=cache)
        assert prefilter.verdict(raw, digest) == (True, True)


# ---------------------------------------------------------------------------
# surfacing: --stats footer, ledger, scanner totals
# ---------------------------------------------------------------------------

class TestSurfacing:
    def test_stats_footer_mentions_prefilter(self, tool, tmp_path):
        (tmp_path / "skip.php").write_text("<?php $a = 1;")
        (tmp_path / "hit.php").write_text("<?php echo $_GET['x'];")
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1))
        footer = report.render_stats()
        assert "prefilter" in footer
        assert "1 skipped" in footer

    def test_ledger_record_and_history_carry_skip_rate(self, tool,
                                                       tmp_path):
        from repro.obs.ledger import build_record, render_history

        (tmp_path / "skip.php").write_text("<?php $a = 1;")
        (tmp_path / "hit.php").write_text("<?php echo $_GET['x'];")
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1))
        record = build_record(report, "run-x", "fp", 1, 0.5)
        assert record["prefilter"]["skipped"] == 1
        assert record["prefilter"]["skip_rate"] == 0.5
        table = render_history([record])
        assert "skip%" in table and "50%" in table

    def test_skip_rate_collapse_trips_the_gate(self):
        from repro.obs.ledger import detect_regressions

        def rec(skip_rate):
            return {"run_id": "r", "target": "t", "fingerprint": "f",
                    "jobs": 1, "mode": "batch", "seconds": 1.0,
                    "phases": {}, "caches": {},
                    "prefilter": {"skipped": 5, "dep_only": 0,
                                  "sink_bearing": 5,
                                  "skip_rate": skip_rate}}

        records = [rec(0.6), rec(0.6), rec(0.05)]
        flagged = detect_regressions(records)
        assert any(r.metric == "prefilter:skip_rate" for r in flagged)

    def test_scanner_accumulates_totals_for_status(self, tool, tmp_path):
        from repro.api import Scanner

        (tmp_path / "skip.php").write_text("<?php $a = 1;")
        (tmp_path / "hit.php").write_text("<?php echo $_GET['x'];")
        scanner = Scanner(tool, ScanOptions(jobs=1))
        scanner.scan(str(tmp_path))  # cold
        scanner.scan(str(tmp_path))  # warm
        info = scanner.prefilter_info()
        assert info["skipped"] == 2  # one per scan
        assert info["sink_bearing"] == 2
        assert info["skip_rate"] == 0.5

    def test_no_prefilter_cli_flag(self, tool, tmp_path, capsys):
        from repro.tool.cli import main as cli_main

        (tmp_path / "skip.php").write_text("<?php $a = 1;")
        app = str(tmp_path)
        assert cli_main(["--json", "--no-prefilter", app]) == 0
        data = json.loads(capsys.readouterr().out)
        # off: the marker-free file is parsed (and clean) all the same
        assert data["summary"]["files"] == 1

    def test_jobs_auto_parses(self):
        from repro.tool.cli import parse_jobs

        assert parse_jobs("auto") == "auto"
        assert parse_jobs("4") == 4
        with pytest.raises(Exception):
            parse_jobs("many")
