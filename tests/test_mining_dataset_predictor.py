"""Tests for symptom extraction, the data set and the FP predictor."""

import numpy as np
import pytest

from repro.analysis import generate_detector
from repro.mining import (
    DynamicSymptoms,
    LABEL_FP,
    LABEL_RV,
    build_dataset,
    build_original_dataset,
    collect_instances,
    extract_symptoms,
    generate_snippets,
    new_predictor,
    original_predictor,
)

DET = generate_detector("sqli", ["mysql_query:0"],
                        sanitizers=["mysql_real_escape_string"])


def candidate(source):
    cands = DET.detect_source("<?php " + source)
    assert cands, "snippet produced no candidate"
    return cands[0]


class TestExtraction:
    def test_guard_symptom(self):
        c = candidate("if (is_numeric($_GET['n'])) "
                      "{ mysql_query('x = ' . $_GET['n']); }")
        assert "is_numeric" in extract_symptoms(c)

    def test_concat_symptom(self):
        c = candidate("mysql_query('a' . $_GET['x']);")
        assert "concat_op" in extract_symptoms(c)

    def test_passed_function_symptom(self):
        c = candidate("$v = trim($_GET['x']); mysql_query($v);")
        assert "trim" in extract_symptoms(c)

    def test_non_symptom_functions_ignored(self):
        c = candidate("$v = md5($_GET['x']); mysql_query($v);")
        symptoms = extract_symptoms(c)
        assert "md5" not in symptoms

    def test_from_clause_symptom(self):
        c = candidate("mysql_query(\"SELECT a FROM t WHERE x = '\" "
                      ". $_GET['x'] . \"'\");")
        assert "FROM" in extract_symptoms(c)

    def test_aggregate_symptom(self):
        c = candidate("mysql_query(\"SELECT COUNT(*) FROM t WHERE g = \" "
                      ". $_GET['g']);")
        symptoms = extract_symptoms(c)
        assert "COUNT" in symptoms

    def test_complex_query_symptom(self):
        c = candidate("mysql_query(\"SELECT a FROM x JOIN y ON x.i = y.i "
                      "WHERE n = '\" . $_GET['n'] . \"'\");")
        assert "ComplexSQL" in extract_symptoms(c)

    def test_isnum_symptom(self):
        c = candidate("mysql_query(\"SELECT a FROM t WHERE id = \" "
                      ". $_GET['id']);")
        assert "IsNum" in extract_symptoms(c)

    def test_quoted_string_not_isnum(self):
        c = candidate("mysql_query(\"SELECT a FROM t WHERE n = '\" "
                      ". $_GET['n'] . \"'\");")
        assert "IsNum" not in extract_symptoms(c)

    def test_dynamic_symptom_mapping(self):
        c = candidate("$v = val_int($_GET['p']); mysql_query('l ' . $v);")
        plain = extract_symptoms(c)
        assert "is_int" not in plain
        dynamic = DynamicSymptoms(mapping={"val_int": "is_int"})
        assert "is_int" in extract_symptoms(c, dynamic)

    def test_dynamic_whitelist(self):
        c = candidate("if (allowed_cat($_GET['c'])) "
                      "{ mysql_query('c = ' . $_GET['c']); }")
        dynamic = DynamicSymptoms(whitelists=frozenset({"allowed_cat"}))
        assert "user_whitelist" in extract_symptoms(c, dynamic)

    def test_dynamic_merge(self):
        a = DynamicSymptoms(mapping={"f": "is_int"})
        b = DynamicSymptoms(whitelists=frozenset({"g"}))
        merged = a.merged(b)
        assert merged.resolve("f") == "is_int"
        assert merged.resolve("g") == "user_whitelist"

    def test_exit_symptom_on_early_exit(self):
        c = candidate("if (!preg_match('/^\\d+$/', $_GET['n'])) "
                      "{ exit('no'); } mysql_query('n = ' . $_GET['n']);")
        symptoms = extract_symptoms(c)
        assert "exit" in symptoms and "preg_match" in symptoms


class TestDataset:
    def test_battery_every_snippet_flags(self):
        snippets = generate_snippets()
        instances = collect_instances(snippets)
        # by construction every snippet contains a taintable flow
        assert len(instances) == len(snippets)

    def test_battery_labels_both_classes(self):
        labels = {label for _, label, _ in collect_instances()}
        assert labels == {LABEL_FP, LABEL_RV}

    def test_dataset_size_and_balance(self):
        ds = build_dataset("new")
        assert ds.size == 256
        assert ds.n_false_positives == 128
        assert ds.n_real_vulnerabilities == 128
        assert ds.is_balanced()

    def test_dataset_width_per_scheme(self):
        assert build_dataset("new").X.shape[1] == 60
        assert build_dataset("original", size=76).X.shape[1] == 15

    def test_original_dataset_counts(self):
        ds = build_original_dataset()
        assert ds.size == 76
        assert ds.n_false_positives == 32
        assert ds.n_real_vulnerabilities == 44

    def test_deterministic(self):
        a = build_dataset("new", seed=13)
        b = build_dataset("new", seed=13)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_no_ambiguous_vectors(self):
        ds = build_dataset("new")
        by_vec = {}
        for row, label in zip(ds.X, ds.y):
            key = tuple(row.astype(int).tolist())
            by_vec.setdefault(key, set()).add(int(label))
        assert all(len(v) == 1 for v in by_vec.values())

    def test_binary_features(self):
        ds = build_dataset("new")
        assert set(np.unique(ds.X).tolist()) <= {0.0, 1.0}


class TestPredictor:
    def test_majority_vote(self):
        predictor = new_predictor()
        result = predictor.predict_symptoms(frozenset({"is_numeric",
                                                       "IsNum", "FROM"}))
        votes = sum(result.votes.values())
        assert result.is_false_positive == (votes * 2 > len(result.votes))

    def test_fp_predicted_for_validated_flow(self):
        c = candidate("if (is_numeric($_GET['n'])) "
                      "{ mysql_query(\"SELECT a FROM t WHERE n = \" "
                      ". $_GET['n']); }")
        assert new_predictor().predict(c).is_false_positive

    def test_rv_predicted_for_direct_flow(self):
        c = candidate("mysql_query(\"SELECT a FROM t WHERE n = '\" "
                      ". $_GET['n'] . \"'\");")
        assert not new_predictor().predict(c).is_false_positive

    def test_new_symptom_asymmetry(self):
        """The paper's headline data-mining improvement: a FP whose only
        evidence is a *new* symptom is caught by WAPe, missed by v2.1."""
        c = candidate("if (is_integer($_GET['n'])) "
                      "{ mysql_query(\"SELECT a FROM t WHERE n = \" "
                      ". $_GET['n']); }")
        assert new_predictor().predict(c).is_false_positive
        assert not original_predictor().predict(c).is_false_positive

    def test_old_symptom_caught_by_both(self):
        c = candidate("if (is_numeric($_GET['n'])) "
                      "{ mysql_query(\"SELECT a FROM t WHERE n = \" "
                      ". $_GET['n']); }")
        assert new_predictor().predict(c).is_false_positive
        assert original_predictor().predict(c).is_false_positive

    def test_custom_sanitizer_not_predicted(self):
        """§V-A: candidates using app-specific helpers (escape) have no
        symptoms, so the predictor reports them as real (the 18 FP cases),
        until the function is configured as a sanitizer."""
        c = candidate("$v = escape($_GET['x']); "
                      "mysql_query(\"SELECT a FROM t WHERE x = '\" . $v "
                      ". \"'\");")
        assert not new_predictor().predict(c).is_false_positive

    def test_dynamic_symptoms_change_prediction(self):
        c = candidate("if (val_num($_GET['n'])) "
                      "{ mysql_query(\"SELECT a FROM t WHERE n = \" "
                      ". $_GET['n']); }")
        plain = new_predictor()
        assert not plain.predict(c).is_false_positive
        dyn = new_predictor(DynamicSymptoms(
            mapping={"val_num": "is_numeric"}))
        assert dyn.predict(c).is_false_positive

    def test_even_ensemble_rejected(self):
        from repro.mining import FalsePositivePredictor, top3_new
        from repro.mining.dataset import build_dataset
        ds = build_dataset("new")
        with pytest.raises(ValueError):
            FalsePositivePredictor(top3_new()[:2], ds)

    def test_prediction_contains_symptoms(self):
        c = candidate("if (is_numeric($_GET['n'])) "
                      "{ mysql_query('n=' . $_GET['n']); }")
        result = new_predictor().predict(c)
        assert "is_numeric" in result.symptoms
