"""Tests for the corpus materializer CLI (python -m repro.corpus)."""

import os

import pytest

from repro.corpus.__main__ import main as corpus_main


class TestCorpusCli:
    def test_both_corpora(self, tmp_path, capsys):
        out = str(tmp_path / "c")
        assert corpus_main(["--out", out, "--vulnerable-only"]) == 0
        text = capsys.readouterr().out
        assert "17 packages" in text
        assert "23 plugins" in text
        assert os.path.isdir(os.path.join(out, "webapps"))
        assert os.path.isdir(os.path.join(out, "wordpress"))

    def test_webapps_only(self, tmp_path, capsys):
        out = str(tmp_path / "w")
        corpus_main(["--out", out, "--webapps-only", "--vulnerable-only"])
        assert os.path.isdir(os.path.join(out, "webapps"))
        assert not os.path.exists(os.path.join(out, "wordpress"))

    def test_exclusive_flags_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            corpus_main(["--out", str(tmp_path), "--webapps-only",
                         "--wordpress-only"])

    def test_file_cap_flag(self, tmp_path):
        out = str(tmp_path / "small")
        corpus_main(["--out", out, "--webapps-only", "--vulnerable-only",
                     "--file-cap", "5"])
        # the smallest packages end up tiny
        abg = os.path.join(out, "webapps",
                           "anywhere_board_games-0.150215")
        assert len(os.listdir(abg)) <= 8

    def test_generated_tree_is_analyzable(self, tmp_path):
        from repro.tool import Wape
        out = str(tmp_path / "c")
        corpus_main(["--out", out, "--webapps-only", "--vulnerable-only",
                     "--file-cap", "3"])
        app = os.path.join(out, "webapps", "ldap_address_book-0.22")
        report = Wape().analyze_tree(app)
        assert [o.vuln_class for o in report.real_vulnerabilities] == \
            ["ldapi"]
