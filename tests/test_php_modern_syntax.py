"""Tests for modern PHP syntax support: arrow functions and match."""

import pytest

from repro.php import ast, parse, unparse
from repro.php.visitor import find_all
from repro.analysis import generate_detector


def first_expr(body):
    prog = parse("<?php " + body)
    stmt = prog.body[0]
    return stmt.expr if isinstance(stmt, ast.ExpressionStatement) else stmt


class TestArrowFunctions:
    def test_basic_arrow(self):
        node = first_expr("$f = fn($x) => $x * 2;")
        closure = node.value
        assert isinstance(closure, ast.Closure)
        assert closure.is_arrow
        assert [p.name for p in closure.params] == ["x"]
        assert isinstance(closure.body[0], ast.Return)

    def test_arrow_no_params(self):
        node = first_expr("$f = fn() => 42;")
        assert node.value.is_arrow

    def test_arrow_by_ref(self):
        node = first_expr("$f = fn&($x) => $x;")
        assert node.value.by_ref

    def test_arrow_with_return_type(self):
        node = first_expr("$f = fn($x): int => $x;")
        assert node.value.is_arrow

    def test_arrow_nested(self):
        node = first_expr("$f = fn($x) => fn($y) => $x + $y;")
        outer = node.value
        inner = outer.body[0].expr
        assert inner.is_arrow

    def test_legacy_fn_identifier(self):
        node = first_expr("$x = fn;")
        assert isinstance(node.value, ast.ConstFetch)

    def test_arrow_round_trip(self):
        src = "<?php $f = fn ($x) => ($x + 1);"
        out = unparse(parse(src))
        assert unparse(parse(out)) == out
        assert "fn (" in out


class TestMatch:
    def test_basic_match(self):
        node = first_expr("$v = match ($x) { 1 => 'a', 2 => 'b' };")
        m = node.value
        assert isinstance(m, ast.Match)
        assert len(m.arms) == 2
        assert m.arms[0].conditions[0].value == 1

    def test_match_multiple_conditions(self):
        node = first_expr("$v = match ($x) { 1, 2, 3 => 'many' };")
        assert len(node.value.arms[0].conditions) == 3

    def test_match_default(self):
        node = first_expr(
            "$v = match ($x) { 1 => 'a', default => 'z' };")
        assert node.value.arms[1].conditions is None

    def test_match_trailing_comma(self):
        node = first_expr("$v = match ($x) { 1 => 'a', };")
        assert len(node.value.arms) == 1

    def test_legacy_match_call(self):
        node = first_expr("$r = match($a, $b);")
        assert isinstance(node.value, ast.FunctionCall)
        assert node.value.name == "match"
        assert len(node.value.args) == 2

    def test_legacy_match_call_single_arg(self):
        # match($x) followed by ';' (no brace) is a call
        node = first_expr("$r = match($a);")
        assert isinstance(node.value, ast.FunctionCall)

    def test_match_round_trip(self):
        src = "<?php $v = match ($x) { 1, 2 => 'a', default => 'z' };"
        out = unparse(parse(src))
        assert unparse(parse(out)) == out

    def test_match_walk(self):
        prog = parse("<?php $v = match ($x) { 1 => f($y) };")
        assert len(list(find_all(prog, ast.FunctionCall))) == 1


class TestTaintThroughModernSyntax:
    @pytest.fixture(scope="class")
    def det(self):
        return generate_detector("sqli", ["mysql_query:0"],
                                 sanitizers=["mysql_real_escape_string"])

    def test_match_propagates_taint(self, det):
        cands = det.detect_source(
            "<?php $q = match ($m) { 1 => 'safe', "
            "default => $_GET['x'] }; mysql_query($q);")
        assert len(cands) == 1

    def test_match_all_safe_arms_silent(self, det):
        cands = det.detect_source(
            "<?php $q = match ($m) { 1 => 'a', default => 'b' }; "
            "mysql_query($q);")
        assert cands == []

    def test_match_sanitized_arm_silent(self, det):
        cands = det.detect_source(
            "<?php $q = match ($m) { default => "
            "mysql_real_escape_string($_GET['x']) }; mysql_query($q);")
        assert cands == []

    def test_arrow_body_sink_detected(self, det):
        cands = det.detect_source(
            "<?php $go = fn($u) => mysql_query('x = ' . $_POST['p']);")
        assert len(cands) == 1

    def test_arrow_captures_enclosing_scope(self, det):
        cands = det.detect_source(
            "<?php $t = $_GET['v']; "
            "$go = fn() => mysql_query('w = ' . $t);")
        assert len(cands) == 1
