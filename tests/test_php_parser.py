"""Unit tests for the PHP parser."""

import pytest

from repro.exceptions import PhpSyntaxError
from repro.php import ast, parse
from repro.php.visitor import find_all


def parse_php(body: str):
    """Parse a PHP snippet (adds the open tag)."""
    return parse("<?php " + body)


def first_stmt(body: str):
    return parse_php(body).body[0]


def first_expr(body: str):
    stmt = first_stmt(body)
    assert isinstance(stmt, ast.ExpressionStatement)
    return stmt.expr


class TestExpressions:
    def test_assignment(self):
        node = first_expr("$x = 1;")
        assert isinstance(node, ast.Assign)
        assert node.target.name == "x"
        assert node.value.value == 1

    def test_compound_assignment(self):
        node = first_expr("$x .= 'a';")
        assert node.op == ".="

    def test_chained_assignment_right_assoc(self):
        node = first_expr("$a = $b = 1;")
        assert isinstance(node.value, ast.Assign)

    def test_by_ref_assignment(self):
        node = first_expr("$a = &$b;")
        assert node.by_ref is True

    def test_concat_precedence(self):
        node = first_expr("$a = 'x' . 'y' . 'z';")
        # left-assoc: ((x . y) . z)
        assert isinstance(node.value, ast.BinaryOp)
        assert node.value.op == "."
        assert isinstance(node.value.left, ast.BinaryOp)

    def test_arithmetic_precedence(self):
        node = first_expr("$a = 1 + 2 * 3;")
        assert node.value.op == "+"
        assert node.value.right.op == "*"

    def test_comparison_and_bool(self):
        node = first_expr("$a = $x == 1 && $y != 2;")
        assert node.value.op == "&&"

    def test_low_precedence_and(self):
        # "or" binds looser than "="
        node = first_expr("$a = foo() or bar();")
        assert isinstance(node, ast.BinaryOp)
        assert node.op == "||"
        assert isinstance(node.left, ast.Assign)

    def test_ternary(self):
        node = first_expr("$a = $c ? 1 : 2;")
        assert isinstance(node.value, ast.Ternary)

    def test_short_ternary(self):
        node = first_expr("$a = $c ?: 2;")
        assert node.value.then is None

    def test_coalesce(self):
        node = first_expr("$a = $_GET['x'] ?? 'd';")
        assert node.value.op == "??"

    def test_unary_not(self):
        node = first_expr("$a = !$b;")
        assert isinstance(node.value, ast.UnaryOp)
        assert node.value.op == "!"

    def test_cast(self):
        node = first_expr("$a = (int)$b;")
        assert isinstance(node.value, ast.Cast)
        assert node.value.to == "int"

    def test_error_suppress(self):
        node = first_expr("$a = @foo();")
        assert isinstance(node.value, ast.ErrorSuppress)

    def test_inc_dec(self):
        pre = first_expr("++$i;")
        post = first_expr("$i++;")
        assert pre.prefix and not post.prefix

    def test_instanceof(self):
        node = first_expr("$a = $x instanceof Foo;")
        assert isinstance(node.value, ast.InstanceOf)
        assert node.value.cls == "Foo"

    def test_power_right_assoc(self):
        node = first_expr("$a = 2 ** 3 ** 2;")
        assert node.value.op == "**"
        assert node.value.right.op == "**"


class TestCallsAndAccess:
    def test_function_call(self):
        node = first_expr("foo($a, 1, 'x');")
        assert isinstance(node, ast.FunctionCall)
        assert node.name == "foo"
        assert len(node.args) == 3

    def test_namespaced_call(self):
        node = first_expr("\\My\\Ns\\foo();")
        assert node.name == "\\My\\Ns\\foo"

    def test_nested_calls(self):
        node = first_expr("outer(inner($x));")
        inner = node.args[0].value
        assert isinstance(inner, ast.FunctionCall)

    def test_method_call(self):
        node = first_expr("$db->query($sql);")
        assert isinstance(node, ast.MethodCall)
        assert node.name == "query"
        assert node.obj.name == "db"

    def test_chained_method_calls(self):
        node = first_expr("$a->b()->c();")
        assert isinstance(node, ast.MethodCall)
        assert isinstance(node.obj, ast.MethodCall)

    def test_static_call(self):
        node = first_expr("Db::query($sql);")
        assert isinstance(node, ast.StaticCall)
        assert node.cls == "Db"

    def test_static_property(self):
        node = first_expr("Foo::$bar;")
        assert isinstance(node, ast.StaticPropertyAccess)

    def test_class_const(self):
        node = first_expr("Foo::BAR;")
        assert isinstance(node, ast.ClassConstAccess)

    def test_array_access(self):
        node = first_expr("$_GET['id'];")
        assert isinstance(node, ast.ArrayAccess)
        assert node.base.name == "_GET"
        assert node.index.value == "id"

    def test_array_append(self):
        node = first_expr("$a[] = 1;")
        assert isinstance(node.target, ast.ArrayAccess)
        assert node.target.index is None

    def test_multidim_access(self):
        node = first_expr("$a[0]['x'];")
        assert isinstance(node.base, ast.ArrayAccess)

    def test_property_access(self):
        node = first_expr("$this->wpdb;")
        assert isinstance(node, ast.PropertyAccess)
        assert node.name == "wpdb"

    def test_dynamic_property(self):
        node = first_expr("$o->$name;")
        assert isinstance(node.name, ast.Variable)

    def test_new(self):
        node = first_expr("new PDO($dsn);")
        assert isinstance(node, ast.New)
        assert node.cls == "PDO"

    def test_new_no_args(self):
        node = first_expr("$m = new MongoClient;")
        assert isinstance(node.value, ast.New)

    def test_variable_function(self):
        node = first_expr("$f($x);")
        assert isinstance(node, ast.FunctionCall)
        assert isinstance(node.name, ast.Variable)

    def test_by_ref_arg(self):
        node = first_expr("sort(&$arr);")
        assert node.args[0].by_ref

    def test_variable_variable(self):
        node = first_expr("$$name;")
        assert isinstance(node, ast.VariableVariable)


class TestLiterals:
    def test_bool_null(self):
        assert first_expr("true;").value is True
        assert first_expr("FALSE;").value is False
        assert first_expr("null;").kind == "null"

    def test_array_literal_long(self):
        node = first_expr("array('a' => 1, 2);")
        assert len(node.items) == 2
        assert node.items[0].key.value == "a"
        assert node.items[1].key is None

    def test_array_literal_short(self):
        node = first_expr("[1, 2, 3];")
        assert isinstance(node, ast.ArrayLiteral)
        assert len(node.items) == 3

    def test_nested_arrays(self):
        node = first_expr("['a' => ['b' => 1]];")
        assert isinstance(node.items[0].value, ast.ArrayLiteral)

    def test_const_fetch(self):
        node = first_expr("PHP_EOL;")
        assert isinstance(node, ast.ConstFetch)


class TestInterpolation:
    def test_no_interpolation_is_literal(self):
        node = first_expr('"plain text";')
        assert isinstance(node, ast.Literal)
        assert node.value == "plain text"

    def test_escape_decoding(self):
        node = first_expr(r'"a\nb\tc\\d\$e";')
        assert node.value == "a\nb\tc\\d$e"

    def test_simple_var(self):
        node = first_expr('"id = $id";')
        assert isinstance(node, ast.InterpolatedString)
        variables = [p for p in node.parts if isinstance(p, ast.Variable)]
        assert variables[0].name == "id"

    def test_simple_array_index(self):
        node = first_expr('"v = $row[name]";')
        access = [p for p in node.parts if isinstance(p, ast.ArrayAccess)][0]
        assert access.index.value == "name"

    def test_simple_property(self):
        node = first_expr('"v = $obj->prop";')
        access = [p for p in node.parts
                  if isinstance(p, ast.PropertyAccess)][0]
        assert access.name == "prop"

    def test_complex_interpolation(self):
        node = first_expr('"v = {$row[\'name\']}";')
        access = [p for p in node.parts if isinstance(p, ast.ArrayAccess)][0]
        assert access.index.value == "name"

    def test_complex_method_call(self):
        node = first_expr('"v = {$o->m(1)}";')
        assert any(isinstance(p, ast.MethodCall) for p in node.parts)

    def test_dollar_without_name_is_literal(self):
        node = first_expr('"cost: $ 5";')
        assert isinstance(node, ast.Literal)

    def test_heredoc_interpolates(self):
        prog = parse("<?php $s = <<<EOT\nhello $name\nEOT;\n")
        assign = prog.body[0].expr
        assert isinstance(assign.value, ast.InterpolatedString)

    def test_shell_exec(self):
        node = first_expr("`ls $dir`;")
        assert isinstance(node, ast.ShellExec)
        assert any(isinstance(p, ast.Variable) for p in node.parts)


class TestStatements:
    def test_echo_multiple(self):
        stmt = first_stmt("echo $a, $b;")
        assert isinstance(stmt, ast.Echo)
        assert len(stmt.exprs) == 2

    def test_if_elseif_else(self):
        stmt = first_stmt("if ($a) { 1; } elseif ($b) { 2; } else { 3; }")
        assert isinstance(stmt, ast.If)
        assert len(stmt.elifs) == 1
        assert stmt.otherwise is not None

    def test_else_if_two_words(self):
        stmt = first_stmt("if ($a) 1; else if ($b) 2;")
        assert len(stmt.elifs) == 1

    def test_if_alternative_syntax(self):
        stmt = first_stmt("if ($a): echo 1; else: echo 2; endif;")
        assert stmt.otherwise is not None

    def test_while(self):
        stmt = first_stmt("while ($x) $x--;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = first_stmt("do { $x--; } while ($x);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for(self):
        stmt = first_stmt("for ($i = 0; $i < 10; $i++) echo $i;")
        assert isinstance(stmt, ast.For)
        assert len(stmt.init) == 1

    def test_foreach_value(self):
        stmt = first_stmt("foreach ($rows as $row) {}")
        assert stmt.key_var is None
        assert stmt.value_var.name == "row"

    def test_foreach_key_value(self):
        stmt = first_stmt("foreach ($rows as $k => $v) {}")
        assert stmt.key_var.name == "k"

    def test_foreach_by_ref(self):
        stmt = first_stmt("foreach ($rows as &$row) {}")
        assert stmt.by_ref

    def test_switch(self):
        stmt = first_stmt(
            "switch ($x) { case 1: echo 'a'; break; default: break; }")
        assert isinstance(stmt, ast.Switch)
        assert len(stmt.cases) == 2
        assert stmt.cases[1].test is None

    def test_return(self):
        stmt = first_stmt("return $x;")
        assert isinstance(stmt, ast.Return)

    def test_return_void(self):
        stmt = first_stmt("return;")
        assert stmt.expr is None

    def test_global(self):
        stmt = first_stmt("global $db, $conf;")
        assert stmt.names == ["db", "conf"]

    def test_static_vars(self):
        stmt = first_stmt("static $count = 0;")
        assert isinstance(stmt, ast.StaticVarDecl)

    def test_unset(self):
        stmt = first_stmt("unset($a, $b['x']);")
        assert len(stmt.vars) == 2

    def test_include_require(self):
        stmt = first_stmt("require_once 'conf.php';")
        assert isinstance(stmt.expr, ast.Include)
        assert stmt.expr.kind == "require_once"

    def test_exit_with_message(self):
        stmt = first_stmt("exit('bye');")
        assert isinstance(stmt.expr, ast.ExitExpr)

    def test_try_catch_finally(self):
        stmt = first_stmt(
            "try { f(); } catch (A | B $e) { g(); } finally { h(); }")
        assert isinstance(stmt, ast.Try)
        assert stmt.catches[0].types == ["A", "B"]
        assert stmt.finally_body is not None

    def test_throw(self):
        stmt = first_stmt("throw new Exception('x');")
        assert isinstance(stmt, ast.Throw)

    def test_list_assign(self):
        stmt = first_expr("list($a, , $b) = $parts;")
        assert isinstance(stmt, ast.ListAssign)
        assert stmt.targets[1] is None

    def test_short_list_assign(self):
        stmt = first_expr("[$a, $b] = $parts;")
        assert isinstance(stmt, ast.ListAssign)

    def test_declare_is_tolerated(self):
        prog = parse_php("declare(strict_types=1); $x = 1;")
        assert len(prog.body) == 2


class TestDeclarations:
    def test_function_decl(self):
        stmt = first_stmt("function f($a, $b = 1, &$c) { return $a; }")
        assert isinstance(stmt, ast.FunctionDecl)
        assert [p.name for p in stmt.params] == ["a", "b", "c"]
        assert stmt.params[1].default.value == 1
        assert stmt.params[2].by_ref

    def test_typed_params(self):
        stmt = first_stmt("function f(int $a, ?string $b, array $c) {}")
        assert stmt.params[0].type_hint == "int"
        assert stmt.params[1].type_hint == "?string"
        assert stmt.params[2].type_hint == "array"

    def test_variadic_param(self):
        stmt = first_stmt("function f(...$args) {}")
        assert stmt.params[0].variadic

    def test_return_type(self):
        stmt = first_stmt("function f(): string { return 'x'; }")
        assert stmt.return_type == "string"

    def test_class_decl(self):
        stmt = first_stmt("""
            class Repo extends Base implements A, B {
                public $db;
                private static $cache = array();
                const LIMIT = 10;
                public function find($id) { return $id; }
                abstract protected function x();
            }
        """)
        assert isinstance(stmt, ast.ClassDecl)
        assert stmt.parent == "Base"
        assert stmt.interfaces == ["A", "B"]
        kinds = [type(m).__name__ for m in stmt.members]
        assert kinds == ["PropertyDecl", "PropertyDecl", "ClassConstDecl",
                         "MethodDecl", "MethodDecl"]
        assert stmt.members[4].body is None  # abstract

    def test_interface(self):
        stmt = first_stmt("interface I { public function f(); }")
        assert stmt.kind == "interface"

    def test_trait_use(self):
        stmt = first_stmt("class C { use T1, T2; }")
        assert isinstance(stmt.members[0], ast.UseTrait)

    def test_abstract_class(self):
        stmt = first_stmt("abstract class C {}")
        assert stmt.modifiers == ["abstract"]

    def test_closure(self):
        node = first_expr("$f = function ($x) use ($y, &$z) { return $x; };")
        assert isinstance(node.value, ast.Closure)
        assert node.value.uses == [("y", False), ("z", True)]

    def test_namespace(self):
        stmt = first_stmt("namespace My\\App;")
        assert isinstance(stmt, ast.NamespaceDecl)
        assert stmt.name == "My\\App"

    def test_use_decl(self):
        stmt = first_stmt("use Foo\\Bar as Baz;")
        assert stmt.imports == [("Foo\\Bar", "Baz")]

    def test_anonymous_class(self):
        node = first_expr("$o = new class { public function f() {} };")
        assert isinstance(node.value, ast.New)
        assert isinstance(node.value.cls, ast.ClassDecl)


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "if ($x { }",            # missing paren
        "function () {",         # unterminated
        "$x = ;",                # missing rhs
        "foreach ($a $b) {}",    # missing as
        "class {}",              # missing name
    ])
    def test_syntax_errors_raise(self, bad):
        with pytest.raises(PhpSyntaxError):
            parse_php(bad)

    def test_error_carries_position(self):
        try:
            parse("<?php\n  $x = ;")
        except PhpSyntaxError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected PhpSyntaxError")


class TestPositionsAndWalk:
    def test_node_positions(self):
        prog = parse("<?php\n$x = 1;\n$y = 2;")
        assert prog.body[0].line == 2
        assert prog.body[1].line == 3

    def test_walk_finds_all_calls(self):
        prog = parse_php("f(g($x), $h->m(i()));")
        calls = list(find_all(prog, ast.FunctionCall))
        assert len(calls) == 3  # f, g, i
        assert len(list(find_all(prog, ast.MethodCall))) == 1

    def test_walk_into_if_elifs(self):
        prog = parse_php("if ($a) { f(); } elseif ($b) { g(); }")
        names = {c.name for c in find_all(prog, ast.FunctionCall)}
        assert names == {"f", "g"}
