"""Tests for corpus profiles, snippet generators and materialization."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    PAPER_CLASS_TOTALS,
    PAPER_PLUGIN_CLASS_TOTALS,
    PAPER_PLUGIN_FP,
    PAPER_PLUGIN_FPP,
    PAPER_PLUGIN_TOTAL_VULNS,
    PAPER_TOTAL_FILES,
    PAPER_TOTAL_LOC,
    PAPER_TOTAL_PLUGINS,
    PAPER_TOTAL_VULNS,
    PAPER_WAP_FP,
    PAPER_WAP_FPP,
    PAPER_WAPE_FP,
    PAPER_WAPE_FPP,
    SUPPORTED_CLASSES,
    VULNERABLE_PLUGINS,
    VULNERABLE_WEBAPPS,
    all_plugin_profiles,
    all_webapp_profiles,
    benign_snippet,
    download_histogram,
    fp_snippet,
    install_histogram,
    materialize_package,
    page_wrapper,
    vuln_snippet,
)
from repro.tool import Wape
from repro.vulnerabilities import wape_registry

GROUPS = {"sqli": "SQLI", "wpsqli": "SQLI", "xss": "XSS", "rfi": "Files",
          "lfi": "Files", "dt_pt": "Files", "scd": "SCD", "ldapi": "LDAPI",
          "sf": "SF", "hi": "HI", "cs": "CS", "xpathi": "XPathI",
          "nosqli": "NoSQLI", "ei": "EI", "osci": "OSCI", "phpci": "PHPCI"}


def grouped_totals(profiles) -> Counter:
    totals: Counter = Counter()
    for profile in profiles:
        for class_id, count in profile.vulns.items():
            totals[GROUPS[class_id]] += count
    return totals


class TestWebappProfiles:
    def test_17_vulnerable_packages(self):
        assert len(VULNERABLE_WEBAPPS) == 17

    def test_54_packages_total(self):
        assert len(all_webapp_profiles()) == 54

    def test_class_totals_match_table6(self):
        assert grouped_totals(VULNERABLE_WEBAPPS) == Counter(
            PAPER_CLASS_TOTALS)

    def test_total_vulnerabilities_413(self):
        assert sum(a.total_vulns for a in VULNERABLE_WEBAPPS) == \
            PAPER_TOTAL_VULNS

    def test_fp_totals_match_table6(self):
        apps = VULNERABLE_WEBAPPS
        assert sum(a.wap_fpp for a in apps) == PAPER_WAP_FPP
        assert sum(a.wap_fp for a in apps) == PAPER_WAP_FP
        assert sum(a.wape_fpp for a in apps) == PAPER_WAPE_FPP
        assert sum(a.wape_fp for a in apps) == PAPER_WAPE_FP

    def test_corpus_files_and_loc_match_section5(self):
        apps = all_webapp_profiles()
        assert sum(a.paper_files for a in apps) == PAPER_TOTAL_FILES
        assert sum(a.paper_loc for a in apps) == PAPER_TOTAL_LOC

    def test_narrative_anchors(self):
        by_name = {(a.name, a.version): a for a in VULNERABLE_WEBAPPS}
        cb27 = by_name[("Clip Bucket", "2.7.0.4")]
        cb28 = by_name[("Clip Bucket", "2.8")]
        # "the most recent version of Clip Bucket contains more 4 SQLI and
        # the same 22 vulnerabilities than the previous version"
        assert cb28.vulns.get("sqli", 0) - cb27.vulns.get("sqli", 0) == 4
        assert cb28.total_vulns - cb27.total_vulns == 4
        # vfront carries the 6 custom-sanitizer cases (§V-A)
        assert by_name[("vfront", "0.99.3")].fp_custom == 6
        # the LDAPI finding lives in the LDAP address book
        assert by_name[("Ldap address book", "0.22")].vulns == {"ldapi": 1}

    def test_wape_fpp_always_superset_of_wap(self):
        for app in VULNERABLE_WEBAPPS:
            assert app.wape_fpp >= app.wap_fpp
            assert app.wape_fp <= app.wap_fp


class TestPluginProfiles:
    def test_23_vulnerable_115_total(self):
        assert len(VULNERABLE_PLUGINS) == 23
        assert len(all_plugin_profiles()) == PAPER_TOTAL_PLUGINS

    def test_class_totals_match_table7(self):
        assert grouped_totals(VULNERABLE_PLUGINS) == Counter(
            PAPER_PLUGIN_CLASS_TOTALS)

    def test_total_169(self):
        assert sum(p.total_vulns for p in VULNERABLE_PLUGINS) == \
            PAPER_PLUGIN_TOTAL_VULNS

    def test_fp_totals(self):
        assert sum(p.wape_fpp for p in VULNERABLE_PLUGINS) == \
            PAPER_PLUGIN_FPP
        assert sum(p.wape_fp for p in VULNERABLE_PLUGINS) == \
            PAPER_PLUGIN_FP

    def test_sqli_findings_are_wpdb_based(self):
        for plugin in VULNERABLE_PLUGINS:
            assert "sqli" not in plugin.vulns  # only wpsqli
        total = sum(p.vulns.get("wpsqli", 0) for p in VULNERABLE_PLUGINS)
        assert total == 55

    def test_narrative_anchors(self):
        by_name = {p.name: p for p in VULNERABLE_PLUGINS}
        # SSTS: 5 registered + 13 newly found = 18 SQLI
        assert by_name["simple-support-ticket-system"].vulns == \
            {"wpsqli": 18}
        # Lightbox: XSS only, the most-installed vulnerable plugin
        lightbox = by_name["lightbox-plus-colorbox"]
        assert lightbox.vulns == {"xss": 8}
        assert lightbox.active_installs > 200_000

    def test_fig4_constraints(self):
        over_10k = sum(1 for p in VULNERABLE_PLUGINS
                       if p.downloads > 10_000)
        assert over_10k == 16  # "16 of them have more than 10K downloads"
        over_2k_installs = sum(1 for p in VULNERABLE_PLUGINS
                               if p.active_installs > 2_000)
        assert over_2k_installs == 12  # "12 plugins ... more than 2000"

    def test_histograms_cover_all_plugins(self):
        plugins = all_plugin_profiles()
        assert sum(download_histogram(plugins)) == 115
        assert sum(install_histogram(plugins)) == 115
        # every range of active installations contains vulnerable plugins
        assert all(n > 0 for n in install_histogram(VULNERABLE_PLUGINS))


@pytest.fixture(scope="module")
def wape_armed():
    return Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])


class TestSnippets:
    @pytest.mark.parametrize("class_id", SUPPORTED_CLASSES)
    def test_vuln_snippet_detected_as_real(self, class_id, wape_armed):
        for seed in range(5):
            rng = random.Random(seed)
            src = page_wrapper([vuln_snippet(class_id, rng)], "t", rng)
            report = wape_armed.analyze_source(src)
            classes = [o.vuln_class for o in report.real_vulnerabilities]
            assert classes == [class_id], (class_id, seed, classes)

    @pytest.mark.parametrize("kind,expect_fp", [
        ("old", True), ("new", True), ("custom", False)])
    def test_fp_snippet_wape_verdicts(self, kind, expect_fp, wape_armed):
        for seed in range(8):
            rng = random.Random(seed)
            src = page_wrapper([fp_snippet(kind, rng)], "t", rng)
            report = wape_armed.analyze_source(src)
            assert len(report.outcomes) == 1, (kind, seed)
            assert (not report.outcomes[0].is_real) == expect_fp, \
                (kind, seed)

    def test_old_fp_predicted_by_wap21_too(self):
        from repro.tool import Wap21
        tool = Wap21()
        for seed in range(8):
            rng = random.Random(seed)
            src = page_wrapper([fp_snippet("old", rng)], "t", rng)
            report = tool.analyze_source(src)
            assert len(report.predicted_false_positives) == 1, seed

    def test_new_fp_missed_by_wap21(self):
        from repro.tool import Wap21
        tool = Wap21()
        for seed in range(8):
            rng = random.Random(seed)
            src = page_wrapper([fp_snippet("new", rng)], "t", rng)
            report = tool.analyze_source(src)
            assert len(report.real_vulnerabilities) == 1, seed

    def test_benign_snippet_clean(self, wape_armed):
        for seed in range(20):
            rng = random.Random(seed)
            src = page_wrapper([benign_snippet(rng)], "t", rng)
            report = wape_armed.analyze_source(src)
            assert report.outcomes == [], seed

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            vuln_snippet("not_a_class", random.Random(0))

    def test_unknown_fp_kind_raises(self):
        with pytest.raises(ValueError):
            fp_snippet("weird", random.Random(0))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_snippets_always_parse(self, seed):
        from repro.php import parse
        rng = random.Random(seed)
        for class_id in ("sqli", "xss", "hi"):
            parse(page_wrapper([vuln_snippet(class_id, rng)], "t", rng))
        parse(page_wrapper([benign_snippet(rng)], "t", rng))


class TestMaterialization:
    def test_deterministic(self, tmp_path):
        app = VULNERABLE_WEBAPPS[1]  # Anywhere Board Games (small)
        a = materialize_package(app, str(tmp_path / "a"))
        b = materialize_package(app, str(tmp_path / "b"))
        import os
        files_a = sorted(os.listdir(a.path))
        files_b = sorted(os.listdir(b.path))
        assert files_a == files_b
        for name in files_a:
            assert open(os.path.join(a.path, name)).read() == \
                open(os.path.join(b.path, name)).read()

    def test_ground_truth_recorded(self, tmp_path):
        app = VULNERABLE_WEBAPPS[0]
        pkg = materialize_package(app, str(tmp_path))
        assert pkg.expected_vulns == app.vulns
        assert pkg.expected_total_fps == app.total_fps

    def test_file_cap_respected(self, tmp_path):
        big = next(a for a in all_webapp_profiles()
                   if a.paper_files > 500)
        pkg = materialize_package(big, str(tmp_path), file_cap=10)
        assert pkg.files_written <= 10 + big.total_vulns + \
            big.total_fps + 1

    def test_wape_reproduces_profile(self, tmp_path, wape_armed):
        app = next(a for a in VULNERABLE_WEBAPPS if a.name == "SAE")
        pkg = materialize_package(app, str(tmp_path))
        report = wape_armed.analyze_tree(pkg.path)
        got = Counter(o.vuln_class
                      for o in report.real_vulnerabilities)
        expected = Counter(app.vulns)
        expected["sqli"] += app.fp_custom  # unpredictable FPs stay "real"
        assert got == +expected
        assert len(report.predicted_false_positives) == app.wape_fpp

    def test_custom_helper_lib_written(self, tmp_path):
        import os
        app = next(a for a in VULNERABLE_WEBAPPS if a.fp_custom)
        pkg = materialize_package(app, str(tmp_path))
        assert os.path.exists(os.path.join(pkg.path, "lib.php"))

    def test_clean_profile_has_no_findings(self, tmp_path, wape_armed):
        from repro.corpus import clean_webapp_profiles
        clean = clean_webapp_profiles()[0]
        pkg = materialize_package(clean, str(tmp_path), file_cap=10)
        report = wape_armed.analyze_tree(pkg.path)
        assert report.outcomes == []
