"""Tests for the taint engine: propagation, sanitization, sinks, summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Detector,
    DetectorConfig,
    SinkSpec,
    SINK_ECHO,
    SINK_INCLUDE,
    SINK_METHOD,
    SINK_SHELL,
    generate_detector,
)

SQLI = generate_detector(
    "sqli", ["mysql_query:0", "mysqli_query:1", "pg_query:1"],
    sanitizers=["mysql_real_escape_string", "mysqli_real_escape_string",
                "addslashes"])

XSS = Detector([DetectorConfig(
    class_id="xss",
    entry_points=frozenset({"_GET", "_POST", "_COOKIE", "_REQUEST",
                            "_SERVER"}),
    sinks=(SinkSpec("", SINK_ECHO), SinkSpec("printf")),
    sanitizers=frozenset({"htmlentities", "htmlspecialchars"}),
)])


def sqli(source):
    return SQLI.detect_source("<?php " + source)


def xss(source):
    return XSS.detect_source("<?php " + source)


class TestDirectFlows:
    def test_direct_sink_arg(self):
        cands = sqli("mysql_query($_GET['q']);")
        assert len(cands) == 1
        assert cands[0].entry_point == "$_GET['q']"
        assert cands[0].sink_name == "mysql_query"

    def test_flow_through_variable(self):
        cands = sqli("$id = $_GET['id']; mysql_query($id);")
        assert len(cands) == 1

    def test_flow_through_concat(self):
        cands = sqli("$q = 'SELECT ' . $_GET['c']; mysql_query($q);")
        assert len(cands) == 1

    def test_flow_through_interpolation(self):
        cands = sqli('$id = $_POST["id"]; $q = "WHERE id = $id"; '
                     'mysql_query($q);')
        assert len(cands) == 1
        assert cands[0].entry_point == "$_POST['id']"

    def test_concat_assign_accumulates(self):
        cands = sqli("$q = 'SELECT'; $q .= $_GET['w']; mysql_query($q);")
        assert len(cands) == 1

    def test_untainted_is_silent(self):
        assert sqli("$q = 'SELECT 1'; mysql_query($q);") == []

    def test_arg_position_respected(self):
        # mysqli_query sink is argument 1, not 0
        assert sqli("mysqli_query($_GET['x'], 'SELECT 1');") == []
        assert len(sqli("mysqli_query($db, $_GET['x']);")) == 1

    def test_reassignment_clears_taint(self):
        cands = sqli("$q = $_GET['x']; $q = 'safe'; mysql_query($q);")
        assert cands == []

    def test_unset_clears_taint(self):
        assert sqli("$q = $_GET['x']; unset($q); mysql_query($q);") == []

    def test_whole_superglobal_read(self):
        cands = sqli("foreach ($_GET as $v) { mysql_query($v); }")
        assert len(cands) == 1
        assert cands[0].entry_point == "$_GET"

    def test_multiple_sources_multiple_reports(self):
        cands = sqli("mysql_query($_GET['a'] . $_POST['b']);")
        sources = {c.entry_point for c in cands}
        assert sources == {"$_GET['a']", "$_POST['b']"}

    def test_dedup_same_flow(self):
        # same source reaching the same sink twice on one line: one report
        cands = sqli("$x = $_GET['a']; $y = $x; mysql_query($x . $y);")
        assert len(cands) == 1


class TestSanitization:
    def test_sanitizer_blocks(self):
        cands = sqli("$s = mysql_real_escape_string($_GET['x']); "
                     "mysql_query($s);")
        assert cands == []

    def test_sanitizer_is_class_specific(self):
        # htmlentities sanitizes XSS, not SQLI
        assert xss("echo htmlentities($_GET['x']);") == []
        assert len(sqli("mysql_query(htmlentities($_GET['x']));")) == 1

    def test_int_cast_untaints(self):
        assert sqli("$n = (int)$_GET['n']; mysql_query($n);") == []

    def test_string_cast_keeps_taint(self):
        assert len(sqli("mysql_query((string)$_GET['n']);")) == 1

    def test_arithmetic_neutralizes(self):
        assert sqli("$n = $_GET['n'] + 0; mysql_query($n);") == []

    def test_sanitized_then_concat_still_clean(self):
        cands = sqli("$s = addslashes($_GET['x']); "
                     "$q = 'w = ' . $s; mysql_query($q);")
        assert cands == []

    def test_partial_sanitization_still_reports_other(self):
        cands = sqli("$s = addslashes($_GET['a']); "
                     "mysql_query($s . $_GET['b']);")
        assert len(cands) == 1
        assert cands[0].entry_point == "$_GET['b']"


class TestControlFlow:
    def test_taint_joins_from_branches(self):
        cands = sqli("if ($c) { $q = $_GET['a']; } else { $q = 'safe'; } "
                     "mysql_query($q);")
        assert len(cands) == 1

    def test_taint_survives_loop(self):
        cands = sqli("$q = ''; foreach ($_POST as $v) { $q .= $v; } "
                     "mysql_query($q);")
        assert len(cands) == 1

    def test_loop_carried_concat(self):
        cands = sqli("$q = 'IN ('; for ($i = 0; $i < 3; $i++) "
                     "{ $q .= $_GET['x']; } mysql_query($q);")
        assert len(cands) == 1

    def test_while_loop(self):
        cands = sqli("while ($row) { $q = $_GET['x']; } mysql_query($q);")
        assert len(cands) == 1

    def test_switch_branches_join(self):
        cands = sqli("switch ($m) { case 1: $q = $_GET['a']; break; "
                     "default: $q = 'x'; } mysql_query($q);")
        assert len(cands) == 1

    def test_ternary_both_sides(self):
        cands = sqli("$q = $c ? $_GET['a'] : 'safe'; mysql_query($q);")
        assert len(cands) == 1

    def test_coalesce(self):
        cands = sqli("$q = $_GET['a'] ?? 'safe'; mysql_query($q);")
        assert len(cands) == 1

    def test_try_catch(self):
        cands = sqli("try { $q = $_GET['a']; } catch (E $e) {} "
                     "mysql_query($q);")
        assert len(cands) == 1


class TestGuards:
    def test_guard_in_condition_recorded(self):
        cands = sqli("$n = $_GET['n']; if (is_numeric($n)) "
                     "{ mysql_query('w = ' . $n); }")
        assert len(cands) == 1
        assert "is_numeric" in cands[0].guards

    def test_guard_on_superglobal_reread(self):
        cands = sqli("if (is_numeric($_GET['n'])) "
                     "{ mysql_query('w = ' . $_GET['n']); }")
        assert cands[0].guards == ("is_numeric",)

    def test_early_exit_guard(self):
        cands = sqli("if (!preg_match('/^\\d+$/', $_GET['n'])) { exit; } "
                     "mysql_query('w = ' . $_GET['n']);")
        assert "preg_match" in cands[0].guards

    def test_guard_does_not_untaint(self):
        # guards are symptoms for the predictor, not sanitization
        cands = sqli("if (is_numeric($_GET['n'])) "
                     "{ mysql_query($_GET['n']); }")
        assert len(cands) == 1

    def test_no_guard_outside_branch(self):
        cands = sqli("if (is_numeric($_GET['a'])) { echo 1; } "
                     "mysql_query($_GET['b']);")
        assert cands[0].guards == ()

    def test_isset_guard(self):
        cands = sqli("if (isset($_GET['n'])) "
                     "{ mysql_query($_GET['n']); }")
        assert "isset" in cands[0].guards


class TestInterprocedural:
    def test_param_to_sink(self):
        cands = sqli("function run($v) { mysql_query($v); } "
                     "run($_GET['x']);")
        assert len(cands) == 1
        assert cands[0].entry_point == "$_GET['x']"

    def test_param_to_return_to_sink(self):
        cands = sqli("function ident($v) { return $v; } "
                     "mysql_query(ident($_GET['x']));")
        assert len(cands) == 1

    def test_user_sanitizer_function(self):
        cands = sqli("function clean($v) "
                     "{ return mysql_real_escape_string($v); } "
                     "mysql_query(clean($_GET['x']));")
        assert cands == []

    def test_function_untainted_arg_silent(self):
        cands = sqli("function run($v) { mysql_query($v); } run('safe');")
        assert cands == []

    def test_internal_flow_reported_without_call(self):
        cands = sqli("function f() { mysql_query($_GET['q']); }")
        assert len(cands) == 1

    def test_method_flow(self):
        cands = sqli("class D { function go($v) { mysql_query($v); } } "
                     "$d = new D(); $d->go($_POST['x']);")
        assert len(cands) == 1

    def test_recursion_does_not_hang(self):
        cands = sqli("function f($v) { f($v); return $v; } "
                     "mysql_query(f($_GET['x']));")
        assert isinstance(cands, list)

    def test_nested_function_calls(self):
        cands = sqli("function a($v) { return $v; } "
                     "function b($v) { return a($v); } "
                     "mysql_query(b($_GET['x']));")
        assert len(cands) == 1

    def test_path_records_function_transit(self):
        cands = sqli("function wrap($v) { return trim($v); } "
                     "mysql_query(wrap($_GET['x']));")
        assert "wrap" in cands[0].passed_functions
        assert "trim" in cands[0].passed_functions


class TestSinkKinds:
    def test_echo_sink(self):
        cands = xss("echo $_GET['msg'];")
        assert len(cands) == 1
        assert cands[0].sink_name == "echo"

    def test_print_sink(self):
        assert len(xss("print $_GET['msg'];")) == 1

    def test_exit_sink(self):
        assert len(xss("exit($_GET['msg']);")) == 1

    def test_echo_sanitized_silent(self):
        assert xss("echo htmlspecialchars($_GET['m']);") == []

    def test_include_sink(self):
        det = Detector([DetectorConfig(
            class_id="rfi",
            entry_points=frozenset({"_GET"}),
            sinks=(SinkSpec("", SINK_INCLUDE),))])
        cands = det.detect_source("<?php include $_GET['page'];")
        assert len(cands) == 1
        assert cands[0].sink_name == "include"

    def test_shell_sink(self):
        det = Detector([DetectorConfig(
            class_id="osci",
            entry_points=frozenset({"_GET"}),
            sinks=(SinkSpec("", SINK_SHELL), SinkSpec("system")))])
        cands = det.detect_source("<?php $out = `cat {$_GET['f']}`;")
        assert len(cands) == 1
        assert cands[0].sink_name == "shell_exec"

    def test_method_sink_with_hint(self):
        det = Detector([DetectorConfig(
            class_id="wpsqli",
            entry_points=frozenset({"_GET"}),
            sinks=(SinkSpec("query", SINK_METHOD,
                            receiver_hint="wpdb"),))])
        hit = det.detect_source("<?php $wpdb->query($_GET['x']);")
        assert len(hit) == 1
        miss = det.detect_source("<?php $other->query($_GET['x']);")
        assert miss == []

    def test_method_sink_through_property(self):
        det = Detector([DetectorConfig(
            class_id="wpsqli",
            entry_points=frozenset({"_GET"}),
            sinks=(SinkSpec("query", SINK_METHOD,
                            receiver_hint="wpdb"),))])
        hit = det.detect_source(
            "<?php class A { function f() "
            "{ $this->wpdb->query($_GET['x']); } }")
        assert len(hit) == 1

    def test_sanitizer_method(self):
        det = Detector([DetectorConfig(
            class_id="wpsqli",
            entry_points=frozenset({"_GET"}),
            sinks=(SinkSpec("query", SINK_METHOD),),
            sanitizer_methods=frozenset({"prepare"}))])
        cands = det.detect_source(
            "<?php $sql = $wpdb->prepare('%s', $_GET['x']); "
            "$wpdb->query($sql);")
        assert cands == []

    def test_source_function(self):
        det = Detector([DetectorConfig(
            class_id="wpsqli",
            source_functions=frozenset({"get_query_var"}),
            sinks=(SinkSpec("query", SINK_METHOD),))])
        cands = det.detect_source(
            "<?php $v = get_query_var('p'); $wpdb->query($v);")
        assert len(cands) == 1
        assert cands[0].entry_point == "get_query_var()"


class TestMultiClass:
    def test_single_pass_multiple_classes(self):
        det = Detector(SQLI.configs + XSS.configs)
        cands = det.detect_source(
            "<?php $x = $_GET['x']; mysql_query($x); echo $x;")
        classes = sorted(c.vuln_class for c in cands)
        assert classes == ["sqli", "xss"]

    def test_class_specific_sanitization(self):
        det = Detector(SQLI.configs + XSS.configs)
        cands = det.detect_source(
            "<?php $x = htmlentities($_GET['x']); "
            "mysql_query($x); echo $x;")
        assert [c.vuln_class for c in cands] == ["sqli"]


class TestServerSuperglobal:
    def test_http_header_tainted(self):
        cands = xss("echo $_SERVER['HTTP_USER_AGENT'];")
        assert len(cands) == 1

    def test_server_name_not_tainted(self):
        assert xss("echo $_SERVER['SERVER_NAME'];") == []


class TestProperties:
    @given(st.sampled_from(["_GET", "_POST", "_COOKIE", "_REQUEST"]),
           st.sampled_from(["id", "q", "name"]),
           st.integers(min_value=0, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_assign_chain_preserves_taint(self, sg, key, hops):
        """Taint survives any number of plain assignments."""
        lines = [f"$v0 = $_{'' if sg.startswith('_') else ''}{sg.lstrip('_')}"
                 f"['{key}'];".replace("$v0 = $", "$v0 = $")]
        lines = [f"$v0 = ${sg}['{key}'];"]
        for i in range(hops):
            lines.append(f"$v{i + 1} = $v{i};")
        lines.append(f"mysql_query($v{hops});")
        cands = sqli(" ".join(lines))
        assert len(cands) == 1
        assert cands[0].entry_point == f"${sg}['{key}']"

    @given(st.sampled_from(["mysql_real_escape_string", "addslashes"]),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_sanitization_is_absorbing(self, san, hops):
        """Once sanitized, a value never reports, however far it flows."""
        lines = [f"$v0 = {san}($_GET['x']);"]
        for i in range(hops):
            lines.append(f"$v{i + 1} = $v{i} . 'suffix';")
        lines.append(f"mysql_query($v{hops});")
        assert sqli(" ".join(lines)) == []

    @given(st.permutations(["$a = $_GET['a'];", "$b = 'safe';",
                            "$c = $_POST['c'];"]))
    @settings(max_examples=20, deadline=None)
    def test_statement_order_of_independent_assigns(self, stmts):
        """Independent assignments: report set is order-invariant."""
        src = " ".join(stmts) + " mysql_query($a . $b . $c);"
        sources = {c.entry_point for c in sqli(src)}
        assert sources == {"$_GET['a']", "$_POST['c']"}
