"""The repository ships the knowledge base as editable text files
(``data/knowledge/``) — §III-A's "external files".  These tests keep the
shipped files in sync with the Python catalogs."""

import os

import pytest

from repro.analysis import load_registry
from repro.tool import Wape
from repro.vulnerabilities import wape_registry

KNOWLEDGE_DIR = os.path.join(os.path.dirname(__file__), "..", "data",
                             "knowledge")


@pytest.fixture(scope="module")
def shipped():
    return load_registry(KNOWLEDGE_DIR)


class TestShippedKnowledgeBase:
    def test_directory_exists(self):
        assert os.path.isdir(KNOWLEDGE_DIR), (
            "regenerate with: python -m repro.tool.cli "
            "--export-kb data/knowledge")

    def test_in_sync_with_catalogs(self, shipped):
        catalogs = wape_registry(include_weapons=False)
        assert {i.class_id for i in shipped} == \
            {i.class_id for i in catalogs}
        for info in catalogs:
            twin = shipped.get(info.class_id)
            assert set(twin.config.sinks) == set(info.config.sinks), \
                info.class_id
            assert twin.config.sanitizers == info.config.sanitizers, \
                info.class_id
            assert twin.config.entry_points == info.config.entry_points
            assert twin.submodule == info.submodule
            assert twin.fix_id == info.fix_id

    def test_tool_boots_from_shipped_kb(self, shipped):
        tool = Wape(class_registry=shipped)
        report = tool.analyze_source("<?php system($_GET['c']);")
        assert [o.vuln_class for o in report.outcomes] == ["osci"]

    def test_files_are_plain_text(self):
        for class_dir in sorted(os.listdir(KNOWLEDGE_DIR)):
            full = os.path.join(KNOWLEDGE_DIR, class_dir)
            for name in ("meta.txt", "ep.txt", "ss.txt", "san.txt"):
                path = os.path.join(full, name)
                assert os.path.exists(path), path
                with open(path, encoding="utf-8") as f:
                    f.read()  # decodable
