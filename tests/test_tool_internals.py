"""Coverage for tool internals: arming, registry extension, versions."""

import pytest

from repro.exceptions import WeaponConfigError
from repro.mining import DynamicSymptoms
from repro.tool import Wap21, Wape
from repro.tool.wap import _extend_registry
from repro.vulnerabilities import wape_registry
from repro.weapons import (
    WeaponClassSpec,
    WeaponRegistry,
    WeaponSpec,
    generate_weapon,
)


def logi_weapon(name="logi", flag="-logi"):
    return generate_weapon(WeaponSpec(
        name=name, flag=flag,
        classes=(WeaponClassSpec(name, "Log injection",
                                 ("error_log:0",), "LOGI"),),
        fix_template="user_sanitization",
        fix_malicious_chars=("\n",),
    ))


class TestArming:
    def test_arm_twice_same_weapon_ok(self):
        tool = Wape()
        weapon = logi_weapon()
        tool.arm(weapon)
        tool.arm(weapon)  # idempotent-ish: same object accepted
        assert tool.class_ids.count("logi") == 1

    def test_arm_name_conflict_rejected(self):
        tool = Wape()
        tool.arm(logi_weapon())
        with pytest.raises(WeaponConfigError):
            tool.arm(logi_weapon())  # different object, same name

    def test_armed_weapon_dynamic_symptoms_merge(self):
        spec = WeaponSpec(
            name="vali", flag="-vali",
            classes=(WeaponClassSpec("vali", "V", ("risky:0",)),),
            fix_template="user_validation",
            fix_malicious_chars=("'",),
            dynamic_symptoms=DynamicSymptoms(
                mapping={"check_it": "is_numeric"}),
        )
        tool = Wape()
        tool.arm(generate_weapon(spec))
        report = tool.analyze_source(
            "<?php if (check_it($_GET['n'])) "
            "{ risky('q = ' . $_GET['n']); }")
        assert len(report.predicted_false_positives) == 1

    def test_weapon_flag_order_irrelevant(self):
        a = Wape(weapon_flags=["-hei", "-wpsqli"])
        b = Wape(weapon_flags=["-wpsqli", "-hei"])
        src = ("<?php header('X: ' . $_GET['h']); "
               "$wpdb->query('q' . $_GET['q']);")
        keys_a = sorted(o.candidate.key()
                        for o in a.analyze_source(src).outcomes)
        keys_b = sorted(o.candidate.key()
                        for o in b.analyze_source(src).outcomes)
        assert keys_a == keys_b

    def test_custom_weapon_registry(self):
        registry = WeaponRegistry([logi_weapon()])
        tool = Wape(weapon_flags=["-logi"], weapon_registry=registry)
        report = tool.analyze_source("<?php error_log($_GET['m']);")
        assert [o.vuln_class for o in report.outcomes] == ["logi"]

    def test_report_group_from_weapon(self):
        tool = Wape()
        tool.arm(logi_weapon())
        report = tool.analyze_source("<?php error_log($_GET['m']);")
        assert report.counts_by_group() == {"LOGI": 1}


class TestRegistryExtension:
    def test_extend_registry_is_pure(self):
        base = wape_registry(include_weapons=False)
        extended = _extend_registry(base, {"sqli": {"escape"}})
        assert "escape" in extended.get("sqli").config.sanitizers
        assert "escape" not in base.get("sqli").config.sanitizers

    def test_extend_registry_untouched_classes_shared(self):
        base = wape_registry(include_weapons=False)
        extended = _extend_registry(base, {"sqli": {"escape"}})
        assert extended.get("xss") is base.get("xss")

    def test_unknown_class_in_extras_ignored(self):
        tool = Wape(extra_sanitizers={"nonexistent": {"f"}})
        assert "nonexistent" not in tool.class_ids


class TestVersionStrings:
    def test_versions_distinct(self):
        assert Wap21.version != Wape.version
        assert "2.1" in Wap21.version

    def test_report_carries_version(self):
        assert Wap21().analyze_source("<?php ;").tool_version == "WAP v2.1"
        assert Wape().analyze_source("<?php ;").tool_version == "WAPe"


class TestWeaponBundleEdgeCases:
    def test_chars_with_percent_sequences(self, tmp_path):
        from repro.weapons import load_weapon, save_weapon
        weapon = generate_weapon(WeaponSpec(
            name="crlf", flag="-crlf",
            classes=(WeaponClassSpec("crlf", "CRLF", ("header:0",)),),
            fix_template="user_sanitization",
            fix_malicious_chars=("\r", "\n", "%0a", "%0d"),
            fix_neutralizer="_",
        ))
        save_weapon(weapon, str(tmp_path / "crlf"))
        loaded = load_weapon(str(tmp_path / "crlf"))
        assert loaded.spec.fix_malicious_chars == \
            ("\r", "\n", "%0a", "%0d")
        assert loaded.spec.fix_neutralizer == "_"
        assert loaded.fix.helper_code == weapon.fix.helper_code

    def test_bundle_with_report_groups(self, tmp_path):
        from repro.weapons import load_weapon, save_weapon
        weapon = logi_weapon()
        save_weapon(weapon, str(tmp_path / "w"))
        loaded = load_weapon(str(tmp_path / "w"))
        assert loaded.report_group("logi") == "LOGI"
