"""Smoke tests for the shipped examples and unit tests for reports."""

import importlib.util
import os
import sys

import pytest

from repro.tool import Wape
from repro.tool.report import AnalysisReport, FileReport

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "create_weapon.py",
        "wordpress_audit.py",
        "false_positive_triage.py",
        "reproduce_evaluation.py",
    ])
    def test_example_runs(self, name, capsys):
        module = _load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report

    def test_quickstart_narrative(self, capsys):
        _load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "real vulnerability" in out
        assert "predicted false positive" in out
        assert "san_sqli(" in out
        assert "real vulnerabilities remaining: 0" in out

    def test_triage_narrative(self, capsys):
        _load_example("false_positive_triage.py").main()
        out = capsys.readouterr().out
        assert out.count("FALSE POSITIVE") >= 3
        assert "not even flagged" in out


class TestReports:
    @pytest.fixture()
    def report(self):
        tool = Wape()
        return tool.analyze_source(
            "<?php mysql_query($_GET['a']); echo $_POST['b']; "
            "if (is_numeric($_GET['n'])) { mysql_query('x' . $_GET['n']); }",
            "app.php")

    def test_counts(self, report):
        assert len(report.outcomes) == 3
        assert len(report.real_vulnerabilities) == 2
        assert len(report.predicted_false_positives) == 1

    def test_counts_by_class_real_only_default(self, report):
        assert report.counts_by_class() == {"sqli": 1, "xss": 1}
        assert report.counts_by_class(real_only=False)["sqli"] == 2

    def test_group_of_unknown_class_falls_back(self, report):
        assert report.group_of("never_heard") == "NEVER_HEARD"

    def test_file_report_properties(self, report):
        fr = report.files[0]
        assert fr.is_vulnerable
        assert len(fr.real) == 2
        assert len(fr.predicted_fp) == 1

    def test_empty_report(self):
        report = AnalysisReport("WAPe", "empty")
        assert report.total_files == 0
        assert report.total_lines == 0
        assert report.counts_by_group() == {}
        assert report.to_dict()["summary"]["candidates"] == 0
        assert "empty" in report.render_text()

    def test_to_dict_round_trips_through_json(self, report):
        import json
        data = json.loads(json.dumps(report.to_dict()))
        assert data["summary"]["real_vulnerabilities"] == 2
        finding = data["files"][0]["findings"][0]
        assert {"class", "sink", "sink_line", "entry_point", "verdict",
                "votes", "symptoms", "path"} <= set(finding)

    def test_render_paths_listed(self, report):
        text = report.render_text(show_paths=True)
        assert "source" in text and "sink" in text

    def test_summary_line_contents(self, report):
        line = report.summary_line()
        assert "app.php" in line
        assert "2 vulnerabilities" in line
        assert "1 predicted FPs" in line

    def test_files_without_findings_hidden_in_render(self):
        report = AnalysisReport("WAPe", "t")
        report.files.append(FileReport("clean.php", 10))
        report.files.append(FileReport("bad.php", 5))
        assert "clean.php" not in report.render_text()
