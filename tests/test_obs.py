"""The scan observatory (`repro.obs`): logger, ledger, profiler.

Unit-level coverage of the observability plane:

* the JSONL logger: sink vs segment mode, level filtering, bound
  fields, worker drain/merge, the no-op default;
* the run ledger: record layout (cpu/jobs facts, per-tier caches,
  findings digest), append/load resilience, digest determinism;
* the rolling-baseline regression detector and `wape history --check`;
* the sampling profiler's folded stacks and hot-function table;
* the IR opcode histogram: identical findings with profiling on/off,
  counters only when on;
* labeled Prometheus export (`base|k=v` -> `base{k="v"}`).

Cross-process behaviour (worker log segments, crash events) lives in
``test_obs_pipeline.py``.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.analysis.options import ScanOptions
from repro.obs import (
    NULL_LOG,
    JsonlLogger,
    RunLedger,
    SamplingProfiler,
    build_record,
    default_ledger_path,
    detect_regressions,
    findings_digest,
    new_run_id,
    opcode_table,
    render_history,
    render_top_functions,
)
from repro.telemetry import Metrics, Telemetry, metrics_to_text
from repro.tool.wap import Wape


@pytest.fixture(scope="module")
def tool():
    return Wape()


def _write_app(root, n_files: int = 3) -> None:
    for i in range(n_files):
        (root / f"page{i}.php").write_text(
            "<?php\n"
            "$q = $_GET['q'];\n"
            "mysql_query(\"SELECT * FROM t WHERE a = '$q'\");\n")


# ---------------------------------------------------------------------------
# JSONL logger
# ---------------------------------------------------------------------------

class TestJsonlLogger:
    def test_sink_mode_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        log = JsonlLogger(path=str(path), run_id="run-test-1")
        log.info("scan_start", files=3)
        log.warning("parse_warning", file="a.php")
        log.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["scan_start",
                                                "parse_warning"]
        assert all(r["run_id"] == "run-test-1" for r in records)
        assert records[0]["files"] == 3
        assert records[0]["level"] == "info"
        assert all("ts" in r for r in records)

    def test_level_filtering(self):
        stream = io.StringIO()
        log = JsonlLogger(stream=stream, level="warning")
        log.debug("nope")
        log.info("nope")
        log.warning("yes")
        log.error("also")
        events = [json.loads(line)["event"]
                  for line in stream.getvalue().splitlines()]
        assert events == ["yes", "also"]

    def test_bind_children_share_the_sink(self):
        stream = io.StringIO()
        log = JsonlLogger(stream=stream, run_id="run-x")
        child = log.bind(request_id="req-1")
        child.info("scan_queued")
        log.info("plain")
        records = [json.loads(line)
                   for line in stream.getvalue().splitlines()]
        assert records[0]["request_id"] == "req-1"
        assert records[0]["run_id"] == "run-x"
        assert "request_id" not in records[1]

    def test_segment_mode_drain_stamps_worker_pid(self):
        log = JsonlLogger(level="info")  # no sink: segment mode
        log.info("chunk_scanned", files=4)
        log.warning("parse_warning", file="b.php")
        drained = log.drain(worker=4242)
        assert log.records == []
        assert [r["worker"] for r in drained] == [4242, 4242]
        # a second drain is empty, not a replay
        assert log.drain(worker=4242) == []

    def test_merge_bypasses_level_filtering(self):
        stream = io.StringIO()
        parent = JsonlLogger(stream=stream, level="error")
        worker = JsonlLogger(level="debug")
        worker.debug("worker_detail", x=1)
        parent.merge(worker.drain(worker=7))
        record = json.loads(stream.getvalue())
        assert record["event"] == "worker_detail"
        assert record["worker"] == 7

    def test_null_log_is_inert(self):
        assert NULL_LOG.enabled is False
        NULL_LOG.info("ignored", x=1)
        assert NULL_LOG.drain(worker=1) == []
        assert NULL_LOG.bind(run_id="r") is NULL_LOG

    def test_run_ids_are_unique_and_prefixed(self):
        ids = {new_run_id() for _ in range(16)}
        assert len(ids) == 16
        assert all(i.startswith("run-") for i in ids)


# ---------------------------------------------------------------------------
# run ledger
# ---------------------------------------------------------------------------

def _record(run_id="run-1", seconds=1.0, scan=0.8, hit_rate=0.9,
            target="/app", fingerprint="fp", jobs=2) -> dict:
    return {
        "version": 1, "run_id": run_id, "ts": 1754550000.0,
        "target": target, "tool": "WAPe", "fingerprint": fingerprint,
        "cpu_count": 4, "jobs": jobs, "jobs_capped_by_cpu": False,
        "files": 10, "lines": 100, "seconds": seconds,
        "candidates": 5, "real": 4, "predicted_fp": 1,
        "parse_errors": 0, "parse_warnings": 0,
        "phases": {"scan": scan, "predict": 0.1},
        "caches": {"result": {"hits": 9, "misses": 1, "puts": 1,
                              "hit_rate": hit_rate}},
        "findings": {"count": 5, "digest": "d" * 64},
    }


class TestLedger:
    def test_build_record_from_a_real_scan(self, tool, tmp_path):
        app = tmp_path / "app"
        app.mkdir()
        _write_app(app)
        cache_dir = str(tmp_path / "cache")
        opts = ScanOptions(jobs=1, cache_dir=cache_dir,
                           telemetry=Telemetry())
        report = tool.analyze_tree(str(app), opts)
        record = build_record(report, run_id="run-t", fingerprint="fp",
                              jobs=1, seconds=0.5)
        assert record["version"] == 1
        assert record["cpu_count"] == (os.cpu_count() or 1)
        assert record["jobs_capped_by_cpu"] == \
            (1 >= (os.cpu_count() or 1))
        assert record["files"] == 3 and record["candidates"] == 3
        assert record["phases"]["scan"] > 0
        assert record["caches"]["result"]["misses"] == 3
        # the AST tier is content-addressed: identical files dedup
        assert record["caches"]["ast"]["puts"] >= 1
        assert len(record["findings"]["digest"]) == 64
        ledger = RunLedger(default_ledger_path(cache_dir))
        ledger.append(record)
        assert ledger.load() == [json.loads(json.dumps(record))]

    def test_digest_is_deterministic_across_runs(self, tool, tmp_path):
        app = tmp_path / "app"
        app.mkdir()
        _write_app(app)
        first = tool.analyze_tree(str(app), ScanOptions(jobs=1))
        second = tool.analyze_tree(str(app), ScanOptions(jobs=1))
        assert findings_digest(first.outcomes) \
            == findings_digest(second.outcomes)

    def test_loader_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps(_record()) + "\n"
                        "{torn line\n"
                        "[1, 2]\n"
                        + json.dumps(_record(run_id="run-2")) + "\n")
        records = RunLedger(str(path)).load()
        assert [r["run_id"] for r in records] == ["run-1", "run-2"]

    def test_render_history_lists_runs_and_digests(self):
        records = [_record(run_id=f"run-{i}") for i in range(3)]
        table = render_history(records)
        assert "run-0" in table and "run-2" in table
        assert "d" * 12 in table
        assert render_history([]) == "ledger is empty"


class TestWatchModeRecords:
    def test_build_record_defaults_to_batch_mode(self, tool, tmp_path):
        app = tmp_path / "app"
        app.mkdir()
        _write_app(app)
        report = tool.analyze_tree(str(app), ScanOptions(jobs=1))
        record = build_record(report, run_id="run-m", fingerprint="fp",
                              jobs=1, seconds=0.1)
        assert record["mode"] == "batch"
        watch = build_record(report, run_id="run-w", fingerprint="fp",
                             jobs=1, seconds=0.1, mode="watch")
        assert watch["mode"] == "watch"
        # same findings, same digest: mode does not change identity
        assert watch["findings"]["digest"] \
            == record["findings"]["digest"]

    def test_digest_covers_fingerprints(self, tool, tmp_path):
        """Two scans with identical verdict shapes but different flows
        must not share a digest once fingerprints are folded in."""
        first = tmp_path / "a"
        first.mkdir()
        (first / "x.php").write_text(
            "<?php\necho $_GET['q'];\n")
        second = tmp_path / "b"
        second.mkdir()
        (second / "x.php").write_text(
            "<?php\necho $_COOKIE['q'];\n")
        one = tool.analyze_tree(str(first), ScanOptions(jobs=1))
        two = tool.analyze_tree(str(second), ScanOptions(jobs=1))
        rec_one = build_record(one, run_id="r1", fingerprint="fp",
                               jobs=1, seconds=0.1)
        rec_two = build_record(two, run_id="r2", fingerprint="fp",
                               jobs=1, seconds=0.1)
        assert rec_one["findings"]["digest"] \
            != rec_two["findings"]["digest"]

    def test_watch_records_do_not_pollute_batch_baselines(self):
        """Warm ~ms watch cycles must never become the rolling baseline
        a cold batch scan is judged against (or vice versa)."""
        records = [dict(_record(run_id=f"run-{i}", seconds=0.005,
                                scan=0.004), mode="watch")
                   for i in range(4)]
        records.append(_record(run_id="run-batch", seconds=10.0,
                               scan=9.5))
        assert detect_regressions(records) == []


class TestRegressionDetector:
    def test_inflated_time_is_flagged(self):
        records = [_record(run_id=f"run-{i}") for i in range(4)]
        records.append(_record(run_id="run-bad", seconds=10.0, scan=9.5))
        flagged = detect_regressions(records)
        metrics = {r.metric for r in flagged}
        assert "seconds" in metrics and "phase:scan" in metrics
        assert all(r.run_id == "run-bad" for r in flagged)
        assert any("10.000s vs baseline" in r.describe()
                   for r in flagged)

    def test_small_absolute_jitter_is_not_flagged(self):
        # 3x relative but only 20ms absolute: below the noise floor
        records = [_record(run_id=f"run-{i}", seconds=0.010, scan=0.008)
                   for i in range(4)]
        records.append(_record(run_id="run-j", seconds=0.030, scan=0.024))
        assert detect_regressions(records) == []

    def test_hit_rate_drop_is_flagged(self):
        records = [_record(run_id=f"run-{i}", hit_rate=0.9)
                   for i in range(4)]
        records.append(_record(run_id="run-cold", hit_rate=0.1))
        flagged = detect_regressions(records)
        assert [r.metric for r in flagged] == ["cache:result:hit_rate"]
        assert flagged[0].kind == "rate"

    def test_different_config_records_do_not_count(self):
        # only one comparable prior record: no verdict
        records = [_record(run_id="run-0", jobs=1),
                   _record(run_id="run-1", jobs=8),
                   _record(run_id="run-2", seconds=50.0, scan=45.0)]
        records[0]["jobs"] = 2
        assert detect_regressions(records) == []

    def test_needs_history(self):
        assert detect_regressions([_record(), _record()]) == []


class TestHistoryCli:
    def test_check_passes_then_flags(self, tmp_path, capsys):
        from repro.tool.history import main as history_main
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(str(path))
        for i in range(4):
            ledger.append(_record(run_id=f"run-{i}"))
        assert history_main(["--ledger", str(path), "--check"]) == 0
        ledger.append(_record(run_id="run-bad", seconds=10.0, scan=9.5))
        assert history_main(["--ledger", str(path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "run-bad" in out and "seconds" in out

    def test_json_output(self, tmp_path, capsys):
        from repro.tool.history import main as history_main
        path = tmp_path / "ledger.jsonl"
        RunLedger(str(path)).append(_record())
        assert history_main(["--ledger", str(path), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["run_id"] == "run-1"


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------

def _spin(deadline: float) -> int:
    import time
    total = 0
    end = time.perf_counter() + deadline
    while time.perf_counter() < end:
        total += sum(range(100))
    return total


class TestSamplingProfiler:
    def test_samples_the_calling_thread(self, tmp_path):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _spin(0.15)
        assert profiler.total_samples > 10
        assert any("_spin" in stack for stack in profiler.samples)
        out = tmp_path / "profile.folded"
        profiler.write_folded(str(out))
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_top_function_table(self):
        samples = {"mod.main;mod.hot": 80, "mod.main;mod.cold": 20}
        table = render_top_functions(samples, top=5)
        assert "mod.hot" in table and "mod.main" in table
        assert "(100 samples)" in table
        assert render_top_functions({}) == "no samples collected"


class TestOpcodeHistogram:
    def test_profiled_scan_finds_the_same_and_publishes_counters(
            self, tool, tmp_path):
        app = tmp_path / "app"
        app.mkdir()
        _write_app(app)
        plain_t, prof_t = Telemetry(), Telemetry()
        plain = tool.analyze_tree(
            str(app), ScanOptions(jobs=1, telemetry=plain_t))
        profiled = tool.analyze_tree(
            str(app), ScanOptions(jobs=1, telemetry=prof_t,
                                  profile=True))
        assert findings_digest(plain.outcomes) \
            == findings_digest(profiled.outcomes)
        prof_counters = {n: c.value
                         for n, c in prof_t.metrics.counters.items()}
        ops = [n for n in prof_counters if n.startswith("ir_op_count.")]
        assert ops, "profiled scan published no opcode counters"
        assert all(not n.startswith("ir_op_")
                   for n in plain_t.metrics.counters)
        table = opcode_table(prof_counters)
        assert "opcode" in table
        assert any(n[len("ir_op_count."):] in table for n in ops)

    def test_opcode_table_fallback(self):
        assert "without --profile" in opcode_table({"files_scanned": 3})


# ---------------------------------------------------------------------------
# labeled Prometheus export
# ---------------------------------------------------------------------------

class TestLabeledMetrics:
    def test_labeled_counters_share_one_type_line(self):
        metrics = Metrics()
        metrics.counter(
            "http_requests_total|endpoint=/v1/scan,method=POST,status=200"
        ).inc()
        metrics.counter(
            "http_requests_total|endpoint=/v1/health,method=GET,status=200"
        ).inc(2)
        text = metrics_to_text(metrics)
        assert text.count("# TYPE wape_http_requests_total counter") == 1
        assert ('wape_http_requests_total{endpoint="/v1/scan",'
                'method="POST",status="200"} 1') in text
        assert ('wape_http_requests_total{endpoint="/v1/health",'
                'method="GET",status="200"} 2') in text

    def test_labeled_histogram_quantiles_merge_labels(self):
        metrics = Metrics()
        hist = metrics.histogram("http_request_seconds|endpoint=/v1/scan")
        hist.observe(0.5)
        hist.observe(1.5)
        text = metrics_to_text(metrics)
        assert ('wape_http_request_seconds_count'
                '{endpoint="/v1/scan"} 2') in text
        assert ('wape_http_request_seconds{endpoint="/v1/scan",'
                'quantile="0.95"}') in text

    def test_unlabeled_names_are_untouched(self):
        metrics = Metrics()
        metrics.counter("files_scanned").inc(7)
        text = metrics_to_text(metrics)
        assert "# TYPE wape_files_scanned counter" in text
        assert "wape_files_scanned 7" in text
