"""Extended CLI coverage: KB export/load, justify, edge cases."""

import json
import os

import pytest

from repro.tool.cli import main as cli_main


@pytest.fixture()
def app(tmp_path):
    path = tmp_path / "app.php"
    path.write_text(
        "<?php mysql_query($_GET['q']);\n"
        "if (is_integer($_GET['n'])) "
        "{ mysql_query('n = ' . $_GET['n']); }\n")
    return str(path)


class TestKnowledgeBaseFlags:
    def test_export_kb(self, tmp_path, capsys):
        target = str(tmp_path / "kb")
        assert cli_main(["--export-kb", target]) == 0
        assert os.path.isdir(os.path.join(target, "sqli"))
        assert "exported" in capsys.readouterr().out

    @pytest.mark.slow
    def test_kb_round_trip_through_cli(self, tmp_path, app, capsys):
        target = str(tmp_path / "kb")
        cli_main(["--export-kb", target])
        capsys.readouterr()
        code = cli_main(["--kb", target, "--quiet", app])
        out = capsys.readouterr().out
        assert code == 1
        assert "SQLI: 1" in out

    def test_edited_kb_via_cli(self, tmp_path, capsys):
        target = str(tmp_path / "kb")
        cli_main(["--export-kb", target])
        # disable the sqli sinks entirely
        (tmp_path / "kb" / "sqli" / "ss.txt").write_text("# none\n")
        php = tmp_path / "t.php"
        php.write_text("<?php mysql_query($_GET['q']);")
        capsys.readouterr()
        code = cli_main(["--kb", target, "--quiet", str(php)])
        assert code == 0  # sink removed -> nothing found

    def test_no_targets_is_an_error(self, capsys):
        assert cli_main(["--quiet"]) == 2
        assert "no targets" in capsys.readouterr().err


class TestJustifyFlag:
    def test_justify_explains_fp(self, app, capsys):
        cli_main(["--justify", app])
        out = capsys.readouterr().out
        assert "FALSE POSITIVE" in out
        assert "is_integer" in out
        assert "classifier votes" in out

    def test_json_and_justify_do_not_mix_output(self, app, capsys):
        cli_main(["--json", "--justify", app])
        out = capsys.readouterr().out
        json.loads(out)  # pure JSON, justification suppressed


class TestWapeDispatcher:
    """The unified `wape` entry point and its deprecation shims."""

    def test_help_lists_subcommands(self, capsys):
        from repro.tool.main import main as wape_main
        assert wape_main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in ("scan", "explain", "serve", "bench"):
            assert command in out

    def test_no_args_prints_usage_and_fails(self, capsys):
        from repro.tool.main import main as wape_main
        assert wape_main([]) == 2
        assert "usage: wape" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro.tool.main import main as wape_main
        assert wape_main(["--version"]) == 0
        assert capsys.readouterr().out.startswith("wape (")

    def test_flag_style_fails_fast_naming_the_subcommand(self, app,
                                                         capsys):
        """The deprecation cycle ended: flag-style is a crisp error."""
        from repro.tool.main import main as wape_main
        assert wape_main(["--quiet", app]) == 2
        err = capsys.readouterr().err
        assert "unknown command" in err
        assert "wape scan" in err

    def test_scan_subcommand_works(self, app, capsys):
        from repro.tool.main import main as wape_main
        assert wape_main(["scan", "--quiet", app]) == 1
        assert "deprecated" not in capsys.readouterr().err

    def test_legacy_module_is_gone(self):
        with pytest.raises(ImportError):
            import repro.tool.legacy  # noqa: F401

    def test_subcommand_path_trips_no_shim(self, app, capsys):
        """The modern spelling must run clean under -W error: no
        internal caller may route through a deprecation shim."""
        import warnings
        from repro.tool.main import main as wape_main
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert wape_main(["scan", "--quiet", app]) == 1
        capsys.readouterr()


class TestModuleEntryPoint:
    @pytest.mark.slow
    def test_python_dash_m(self, app):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "scan", "--quiet", app],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert "vulnerabilities" in proc.stdout
