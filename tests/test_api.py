"""The embedding API: warm incremental scans, options shims, cache moves."""

import os
import shutil
import warnings

import pytest

from repro.analysis.options import ScanOptions
from repro.analysis.pipeline import ScanScheduler
from repro.api import Scanner
from repro.tool.wap import Wape

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")


@pytest.fixture(scope="module")
def tool():
    return Wape()


@pytest.fixture()
def app(tmp_path):
    """A throwaway copy of the demo app (tests edit it)."""
    root = tmp_path / "demo_app"
    shutil.copytree(DEMO_APP, root)
    return str(root)


def finding_keys(report):
    """Comparable identity of every finding (file relative to target)."""
    out = set()
    for file_report in report.files:
        rel = os.path.relpath(file_report.filename, report.target)
        for outcome in file_report.outcomes:
            cand = outcome.candidate
            out.add((rel, cand.vuln_class, cand.sink_line,
                     cand.entry_line, cand.entry_point, outcome.is_real))
    return out


class TestScannerWarmPath:
    def test_cold_then_noop_rescan(self, tool, app):
        scanner = Scanner(tool, ScanOptions(jobs=1))
        first = scanner.scan(app)
        assert not first.incremental
        paths = ScanScheduler.discover(app)
        prefilter = first.report.prefilter
        assert prefilter is not None
        not_run = prefilter.skipped + prefilter.dep_only
        assert first.analyzed_files == len(paths) - not_run
        again = scanner.scan(app)
        assert again.incremental
        assert again.analyzed_files == 0
        assert again.reused_files == len(paths)
        assert finding_keys(again.report) == finding_keys(first.report)

    def test_edit_reanalyzes_only_the_include_closure(self, tool, app):
        scanner = Scanner(tool, ScanOptions(jobs=1))
        scanner.scan(app)
        # feed.php requires includes/input.php: editing the dependency
        # must re-analyze exactly the two of them
        dep = os.path.join(app, "includes", "input.php")
        with open(dep, "a", encoding="utf-8") as f:
            f.write("\n<?php // touched ?>\n")
        result = scanner.scan(app)
        assert result.incremental
        assert set(result.dirty) == {os.path.join("includes", "input.php"),
                                     "feed.php"}
        assert result.reused_files == len(
            ScanScheduler.discover(app)) - 2

    def test_warm_report_matches_batch_scan(self, tool, app):
        """Oracle: warm incremental findings == a fresh batch scan's."""
        scanner = Scanner(tool, ScanOptions(jobs=1))
        scanner.scan(app)
        target = os.path.join(app, "contact.php")
        with open(target, "a", encoding="utf-8") as f:
            f.write("\n<?php system($_GET['cmd_oracle']); ?>\n")
        warm = scanner.scan(app)
        batch = tool.analyze_tree(app, ScanOptions(jobs=1))
        assert finding_keys(warm.report) == finding_keys(batch)
        assert any("cmd_oracle" in str(key[4])
                   for key in finding_keys(warm.report))

    def test_findings_diff_tracks_edit_and_revert(self, tool, app):
        scanner = Scanner(tool, ScanOptions(jobs=1))
        base = finding_keys(scanner.scan(app).report)
        target = os.path.join(app, "contact.php")
        with open(target, encoding="utf-8") as f:
            original = f.read()
        with open(target, "a", encoding="utf-8") as f:
            f.write("\n<?php echo $_GET['diff_probe']; ?>\n")
        edited = finding_keys(scanner.scan(app).report)
        added = edited - base
        assert base - edited == set()
        assert {(key[0], key[1]) for key in added} == \
            {("contact.php", "xss")}
        with open(target, "w", encoding="utf-8") as f:
            f.write(original)
        assert finding_keys(scanner.scan(app).report) == base

    def test_added_and_removed_files(self, tool, app):
        scanner = Scanner(tool, ScanOptions(jobs=1))
        base = finding_keys(scanner.scan(app).report)
        extra = os.path.join(app, "extra.php")
        with open(extra, "w", encoding="utf-8") as f:
            f.write("<?php echo $_GET['added_file']; ?>\n")
        grown = scanner.scan(app)
        assert "extra.php" in grown.dirty
        assert any(key[0] == "extra.php"
                   for key in finding_keys(grown.report))
        os.unlink(extra)
        shrunk = scanner.scan(app)
        assert finding_keys(shrunk.report) == base

    def test_forget_forces_cold_scan(self, tool, app):
        scanner = Scanner(tool, ScanOptions(jobs=1))
        scanner.scan(app)
        assert scanner.roots() == [os.path.abspath(app)]
        scanner.forget(app)
        assert scanner.roots() == []
        assert not scanner.scan(app).incremental

    def test_result_dict_carries_service_block(self, tool, app):
        scanner = Scanner(tool, ScanOptions(jobs=1))
        scanner.scan(app)
        data = scanner.scan(app).to_dict()
        assert data["schema_version"] >= 2
        assert data["service"]["incremental"] is True
        assert data["service"]["analyzed_files"] == 0

    def test_warm_scan_uses_shared_result_cache(self, tool, app,
                                                tmp_path):
        cache_dir = str(tmp_path / "cache")
        scanner = Scanner(tool, ScanOptions(jobs=1, cache_dir=cache_dir))
        scanner.scan(app)
        # a second scanner (fresh process in real life) hits the same
        # cache entries the first one put
        other = Scanner(tool, ScanOptions(jobs=1, cache_dir=cache_dir))
        result = other.scan(app)
        assert result.report.cache is not None
        assert result.report.cache.hits == result.reused_files
        assert result.analyzed_files == 0


class TestCacheRelocation:
    """Satellite fix: cached results must survive a moved checkout."""

    def test_moved_root_still_hits_and_reports_new_paths(self, tool,
                                                         tmp_path):
        cache_dir = str(tmp_path / "cache")
        options = ScanOptions(jobs=1, cache_dir=cache_dir)
        root_a = tmp_path / "checkout_a" / "demo_app"
        shutil.copytree(DEMO_APP, root_a)
        first = tool.analyze_tree(str(root_a), options)
        assert first.cache.puts > 0

        root_b = tmp_path / "checkout_b" / "demo_app"
        root_b.parent.mkdir()
        shutil.move(str(root_a), str(root_b))
        second = tool.analyze_tree(str(root_b), options)
        # every per-file entry hits despite the new absolute paths...
        assert second.cache.hits == first.cache.misses
        assert second.cache.misses == 0
        # ...and nothing in the served report mentions the old location
        for file_report in second.files:
            assert str(root_b) in file_report.filename
            for outcome in file_report.outcomes:
                for step in outcome.candidate.path:
                    if step.file:
                        assert str(root_a) not in step.file
        assert finding_keys(first) != set()  # the app is vulnerable
        assert {key[1:] for key in finding_keys(first)} == \
            {key[1:] for key in finding_keys(second)}


class TestOptionsPath:
    """The PR-4 legacy kwarg shims are gone: options objects only."""

    def test_legacy_kwargs_are_a_type_error(self, tool, app):
        with pytest.raises(TypeError):
            tool.analyze_tree(app, jobs=1, cache_dir=None)

    def test_scheduler_legacy_kwargs_are_a_type_error(self):
        with pytest.raises(TypeError):
            ScanScheduler((), jobs=1)

    def test_options_path_is_silent(self, tool, app):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tool.analyze_tree(app, ScanOptions(jobs=1))

    def test_jobs_auto_resolves_to_cpu_count(self):
        assert ScanOptions(jobs="auto").resolved_jobs() == \
            (os.cpu_count() or 1)
        assert ScanOptions(jobs=3).resolved_jobs() == 3


class TestApiIsolation:
    def test_api_import_does_not_pull_in_the_http_server(self):
        import subprocess
        import sys
        code = ("import sys; import repro.api; "
                "bad = [m for m in sys.modules "
                "if m.startswith('repro.service') "
                "or m == 'http.server']; "
                "sys.exit(1 if bad else 0)")
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0


class TestWarmStateThreadSafety:
    def test_observers_never_see_torn_state_during_scans(self, tool,
                                                         tmp_path):
        """Regression: ``roots()``/``root_info()`` from observer threads
        raced the scan thread's ``_states`` mutations — transient
        ``RuntimeError: dictionary changed size during iteration`` and
        pickles of half-updated snapshots.  Warm state is now published
        whole under a lock; a hammer of concurrent reads must survive a
        stream of scans untouched."""
        import threading

        roots = []
        for i in range(12):
            root = tmp_path / f"proj{i}"
            root.mkdir()
            (root / "index.php").write_text(
                f"<?php echo $_GET['p{i}']; ?>\n")
            roots.append(str(root))

        scanner = Scanner(tool, ScanOptions(jobs=1))
        failures = []
        done = threading.Event()

        def hammer():
            while not done.is_set():
                try:
                    for root in scanner.roots():
                        info = scanner.root_info(root)
                        assert info["root"] == root
                        if info["warm"]:
                            assert info["files"] >= 0
                except Exception as exc:  # pragma: no cover - regression
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for root in roots:
                scanner.scan(root)
            for root in roots:  # warm republish path too
                scanner.scan(root)
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not failures, failures[0]


class TestStreamingHook:
    def test_on_file_fires_per_file_in_report_order(self, tool, app):
        scanner = Scanner(tool, ScanOptions(jobs=1))
        seen_cold = []
        scanner.on_file = lambda fr: seen_cold.append(fr.filename)
        cold = scanner.scan(app)
        assert seen_cold == [f.filename for f in cold.report.files]

        with open(os.path.join(app, "profile.php"), "a",
                  encoding="utf-8") as f:
            f.write("\n<?php echo $_GET['hook_probe']; ?>\n")
        seen_warm = []
        scanner.on_file = lambda fr: seen_warm.append(fr.filename)
        warm = scanner.scan(app)
        assert warm.incremental is True
        assert seen_warm == [f.filename for f in warm.report.files]
