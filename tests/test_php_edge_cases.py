"""PHP frontend edge cases: tricky real-world constructs."""

import pytest

from repro.exceptions import PhpSyntaxError
from repro.php import ast, parse, unparse
from repro.php.visitor import find_all


def body(source):
    return parse("<?php " + source).body


def expr(source):
    return body(source)[0].expr


class TestStringsDeep:
    def test_escaped_dollar_not_interpolated(self):
        node = expr(r'$s = "costs \$5";')
        assert isinstance(node.value, ast.Literal)
        assert node.value.value == "costs $5"

    def test_hex_and_unicode_escapes(self):
        node = expr(r'$s = "\x41\u{1F40D}";')
        assert node.value.value == "A\U0001F40D"

    def test_octal_escape(self):
        node = expr(r'$s = "\101";')
        assert node.value.value == "A"

    def test_adjacent_interpolations(self):
        node = expr('$s = "$a$b";')
        variables = [p.name for p in node.value.parts
                     if isinstance(p, ast.Variable)]
        assert variables == ["a", "b"]

    def test_brace_complex_with_method(self):
        node = expr('$s = "v={$o->get(1)}";')
        assert any(isinstance(p, ast.MethodCall)
                   for p in node.value.parts)

    def test_literal_brace_without_dollar(self):
        node = expr('$s = "css { color: red }";')
        assert isinstance(node.value, ast.Literal)

    def test_heredoc_multiline_positions(self):
        prog = parse('<?php\n$s = <<<EOT\nline1 $x\nline2\nEOT;\n$y = 1;')
        assert isinstance(prog.body[0].expr.value,
                          ast.InterpolatedString)
        assert prog.body[1].line == 6

    def test_nowdoc_never_interpolates(self):
        prog = parse("<?php $s = <<<'EOT'\nraw $x {$y}\nEOT;\n")
        assert isinstance(prog.body[0].expr.value, ast.Literal)

    def test_indented_heredoc_terminator(self):
        prog = parse("<?php $s = <<<EOT\n  text\n  EOT;\n")
        assert prog.body[0].expr.value.value.strip() == "text"

    def test_simple_index_negative_number(self):
        node = expr('$s = "$a[-1]";')
        access = [p for p in node.value.parts
                  if isinstance(p, ast.ArrayAccess)][0]
        assert access.index.value == -1


class TestOperatorsDeep:
    def test_precedence_concat_vs_compare(self):
        # PHP 7: '.' binds tighter than '<'
        node = expr("$x = 'a' . 'b' == 'ab';")
        assert node.value.op == "=="
        assert node.value.left.op == "."

    def test_coalesce_right_assoc(self):
        node = expr("$x = $a ?? $b ?? $c;")
        assert node.value.right.op == "??"

    def test_ternary_binds_looser_than_coalesce(self):
        node = expr("$x = $a ?? $b ? 1 : 2;")
        assert isinstance(node.value, ast.Ternary)
        assert node.value.cond.op == "??"

    def test_not_binds_tighter_than_and(self):
        node = expr("$x = !$a && $b;")
        assert node.value.op == "&&"
        assert isinstance(node.value.left, ast.UnaryOp)

    def test_unary_minus_power(self):
        # -2 ** 2: ** binds tighter than unary minus in PHP
        node = expr("$x = -$a ** 2;")
        assert isinstance(node.value, ast.UnaryOp)
        assert node.value.operand.op == "**"

    def test_instanceof_chain(self):
        node = expr("$x = $a instanceof A instanceof B;")
        assert isinstance(node.value, ast.InstanceOf)

    def test_assign_inside_condition(self):
        stmt = body("if ($row = mysql_fetch_assoc($r)) { echo 1; }")[0]
        assert isinstance(stmt.cond, ast.Assign)

    def test_spaceship(self):
        node = expr("$x = $a <=> $b;")
        assert node.value.op == "<=>"

    def test_bitwise_precedence(self):
        node = expr("$x = $a | $b & $c;")
        assert node.value.op == "|"
        assert node.value.right.op == "&"


class TestDeclarationsDeep:
    def test_method_named_like_keyword(self):
        prog = parse("<?php class C { public function list() {} "
                     "public function print() {} }")
        cls = prog.body[0]
        assert [m.name for m in cls.members] == ["list", "print"]

    def test_class_const_named_like_keyword(self):
        prog = parse("<?php class C { const DEFAULT = 1; } "
                     "$x = C::DEFAULT;")
        access = list(find_all(prog, ast.ClassConstAccess))
        assert access[0].name == "DEFAULT"

    def test_static_method_called_on_static(self):
        node = expr("$x = static::make();")
        assert isinstance(node.value, ast.StaticCall)
        assert node.value.cls == "static"

    def test_parent_style_call(self):
        prog = parse("<?php class C extends B "
                     "{ function f() { parent::f(); } }")
        calls = list(find_all(prog, ast.StaticCall))
        assert calls[0].cls == "parent"

    def test_nullable_union_types(self):
        prog = parse("<?php function f(?int $a, string|array $b) {}")
        params = prog.body[0].params
        assert params[0].type_hint == "?int"
        assert "array" in params[1].type_hint

    def test_constructor_promotion_tolerated(self):
        prog = parse("<?php class P { public function __construct("
                     "private int $x, public $y = 2) {} }")
        ctor = prog.body[0].members[0]
        assert [p.name for p in ctor.params] == ["x", "y"]

    def test_interface_extends_many(self):
        prog = parse("<?php interface I extends A, B {}")
        assert prog.body[0].interfaces == ["A", "B"]

    def test_use_function_import(self):
        prog = parse("<?php use function My\\Ns\\helper;")
        assert prog.body[0].imports == [("My\\Ns\\helper", None)]

    def test_grouped_properties(self):
        prog = parse("<?php class C { public $a = 1, $b; }")
        prop = prog.body[0].members[0]
        assert [name for name, _ in prop.vars] == ["a", "b"]


class TestControlFlowDeep:
    def test_nested_alternative_syntax(self):
        prog = parse("<?php if ($a): while ($b): echo 1; endwhile; "
                     "endif;")
        outer = prog.body[0]
        assert isinstance(outer.then[0], ast.While)

    def test_for_with_empty_sections(self):
        stmt = body("for (;;) { break; }")[0]
        assert stmt.init == [] and stmt.cond == [] and stmt.step == []

    def test_for_multiple_expressions(self):
        stmt = body("for ($i = 0, $j = 9; $i < $j; $i++, $j--) {}")[0]
        assert len(stmt.init) == 2 and len(stmt.step) == 2

    def test_break_with_level(self):
        stmt = body("while (1) { while (1) { break 2; } }")[0]
        inner_break = list(find_all(parse("<?php while (1) "
                                          "{ while (1) { break 2; } }"),
                                    ast.Break))[0]
        assert inner_break.level == 2

    def test_switch_alternative_syntax(self):
        stmt = body("switch ($x): case 1: echo 1; break; endswitch;")[0]
        assert len(stmt.cases) == 1

    def test_foreach_list_destructuring(self):
        stmt = body("foreach ($pairs as list($a, $b)) { echo $a; }")[0]
        assert isinstance(stmt, ast.Foreach)


class TestHtmlBoundaries:
    def test_php_islands_between_html(self):
        prog = parse("<a><?php if ($x) { ?><b><?php } ?></a>")
        # the InlineHTML inside the if-body is preserved
        htmls = [n.text for n in find_all(prog, ast.InlineHTML)]
        assert any("<b>" in t for t in htmls)

    def test_short_echo_expression(self):
        prog = parse("<p><?= $user ?></p>")
        echos = list(find_all(prog, ast.Echo))
        assert len(echos) == 1

    def test_close_tag_terminates_statement(self):
        prog = parse("<?php $x = 1 ?>html")
        assert isinstance(prog.body[0], ast.ExpressionStatement)

    def test_unparse_keeps_island_structure(self):
        src = "<a><?php echo 1; ?></a><b><?php echo 2; ?></b>"
        out = unparse(parse(src))
        assert out.index("<a>") < out.index("echo 1")
        assert out.index("echo 1") < out.index("<b>")
        assert out.index("<b>") < out.index("echo 2")


class TestErrorsPrecise:
    @pytest.mark.parametrize("source,line", [
        ("<?php\n$x = ;", 2),
        ("<?php\n\nfunction f(// broken", 3),
    ])
    def test_error_line_numbers(self, source, line):
        with pytest.raises(PhpSyntaxError) as exc_info:
            parse(source)
        assert exc_info.value.line >= line - 1

    def test_error_includes_filename(self):
        with pytest.raises(PhpSyntaxError) as exc_info:
            parse("<?php $x = ;", "myfile.php")
        assert "myfile.php" in str(exc_info.value)
