"""Tests for the Wap21/Wape facades, reports and CLI."""

import os

import pytest

from repro.tool import Wap21, Wape
from repro.tool.cli import main as cli_main
from repro.weapons import (
    WeaponClassSpec,
    WeaponSpec,
    generate_weapon,
)

VULN_SRC = """<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = '" . $id . "'");
if (is_integer($_GET['n'])) {
    mysql_query("SELECT a FROM t WHERE n = " . $_GET['n']);
}
echo $_GET['msg'];
header("Location: " . $_GET['next']);
"""


@pytest.fixture(scope="module")
def wape():
    return Wape()


@pytest.fixture(scope="module")
def wape_armed():
    return Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])


@pytest.fixture(scope="module")
def wap21():
    return Wap21()


class TestVersionsDiffer:
    def test_wape_detects_original_classes(self, wape):
        report = wape.analyze_source(VULN_SRC)
        classes = {o.vuln_class for o in report.outcomes}
        assert "sqli" in classes and "xss" in classes

    def test_wape_without_weapon_misses_hi(self, wape):
        report = wape.analyze_source(VULN_SRC)
        assert "hi" not in {o.vuln_class for o in report.outcomes}

    def test_armed_wape_detects_hi(self, wape_armed):
        report = wape_armed.analyze_source(VULN_SRC)
        assert "hi" in {o.vuln_class for o in report.outcomes}

    def test_wap21_never_detects_new_classes(self, wap21):
        src = VULN_SRC + "\n<?php session_id($_GET['sid']);"
        report = wap21.analyze_source(src)
        classes = {o.vuln_class for o in report.outcomes}
        assert classes <= {"sqli", "xss", "rfi", "lfi", "dt_pt", "scd",
                           "osci", "phpci"}

    def test_wape_detects_sf(self, wape):
        report = wape.analyze_source("<?php session_id($_GET['sid']);")
        assert [o.vuln_class for o in report.outcomes] == ["sf"]

    def test_fp_prediction_asymmetry(self, wape, wap21):
        """The is_integer-guarded candidate: WAPe predicts FP, v2.1 not."""
        new_report = wape.analyze_source(VULN_SRC)
        old_report = wap21.analyze_source(VULN_SRC)
        new_fp = [o for o in new_report.predicted_false_positives
                  if o.vuln_class == "sqli"]
        old_fp = [o for o in old_report.predicted_false_positives
                  if o.vuln_class == "sqli"]
        assert len(new_fp) == 1
        assert len(old_fp) == 0

    def test_same_real_vulns_for_shared_classes(self, wape, wap21):
        """Question 2 of §V: WAPe still finds everything v2.1 found."""
        report_new = wape.analyze_source(VULN_SRC)
        report_old = wap21.analyze_source(VULN_SRC)
        def keys(report):
            return {(o.candidate.vuln_class, o.candidate.sink_line)
                    for o in report.outcomes}
        assert keys(report_old) <= keys(report_new)

    def test_class_ids_counts(self, wape, wap21, wape_armed):
        assert len(wap21.class_ids) == 8
        assert len(wape.class_ids) == 12      # 8 + SF, CS, LDAPI, XPathI
        assert len(wape_armed.class_ids) == 16  # + nosqli, hi, ei, wpsqli


class TestExtraSanitizers:
    def test_vfront_escape_scenario(self):
        """§V-A: feeding the custom `escape` helper removes the 6 cases."""
        src = ("<?php $v = escape($_GET['x']); "
               "mysql_query(\"SELECT a FROM t WHERE x = '\" . $v . \"'\");")
        plain = Wape().analyze_source(src)
        assert len(plain.real_vulnerabilities) == 1
        tuned = Wape(extra_sanitizers={"sqli": {"escape"}})
        report = tuned.analyze_source(src)
        assert report.outcomes == []  # not even a candidate


class TestWeaponArming:
    def test_arm_custom_weapon(self):
        weapon = generate_weapon(WeaponSpec(
            name="logi", flag="-logi",
            classes=(WeaponClassSpec("logi", "Log injection",
                                     ("error_log:0",)),),
            fix_template="user_sanitization",
            fix_malicious_chars=("\n",),
        ))
        tool = Wape()
        tool.arm(weapon)
        report = tool.analyze_source("<?php error_log($_GET['x']);")
        assert [o.vuln_class for o in report.outcomes] == ["logi"]

    def test_armed_weapon_fix_registered(self):
        weapon = generate_weapon(WeaponSpec(
            name="logi", flag="-logi",
            classes=(WeaponClassSpec("logi", "Log injection",
                                     ("error_log:0",)),),
            fix_template="user_sanitization",
            fix_malicious_chars=("\n",),
        ))
        tool = Wape()
        tool.arm(weapon)
        result = tool.correct_source("<?php error_log($_GET['x']);")
        assert "san_logi(" in result.source

    def test_unknown_flag_raises(self):
        from repro.exceptions import WeaponConfigError
        with pytest.raises(WeaponConfigError):
            Wape(weapon_flags=["-bogus"])


class TestReports:
    def test_counts_by_group_merges_files(self, wape):
        src = ("<?php include $_GET['a']; "
               "include 'x/' . $_GET['b'] . '.php'; "
               "$h = fopen($_GET['c'], 'r');")
        report = wape.analyze_source(src)
        groups = report.counts_by_group(real_only=False)
        assert groups["Files"] == 3

    def test_wpsqli_grouped_as_sqli(self, wape_armed):
        src = ("<?php $wpdb->query(\"SELECT a FROM p WHERE t = '\" "
               ". $_GET['t'] . \"'\");")
        report = wape_armed.analyze_source(src)
        assert report.counts_by_group(real_only=False)["SQLI"] == 1

    def test_summary_and_render(self, wape):
        report = wape.analyze_source(VULN_SRC, "app.php")
        line = report.summary_line()
        assert "app.php" in line and "vulnerabilities" in line
        text = report.render_text(show_paths=True)
        assert "real vulnerability" in text
        assert "predicted false positive" in text
        assert "source" in text  # a path step

    def test_parse_error_captured(self, wape):
        report = wape.analyze_source("<?php $x = ;")
        assert report.files[0].parse_error
        assert report.outcomes == []

    def test_analyze_tree(self, wape, tmp_path):
        (tmp_path / "a.php").write_text("<?php echo $_GET['x'];")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.php").write_text(
            "<?php mysql_query($_GET['q']);")
        (tmp_path / "ignored.txt").write_text("not php")
        report = wape.analyze_tree(str(tmp_path))
        assert report.total_files == 2
        assert len(report.real_vulnerabilities) == 2
        assert len(report.vulnerable_files) == 2

    def test_correct_source_pipeline(self, wape):
        result = wape.correct_source(VULN_SRC)
        assert "san_sqli(" in result.source
        assert "san_out(" in result.source
        # the predicted false positive is not fixed
        assert "('SELECT a FROM t WHERE n = ' . $_GET['n'])" \
            in result.source


class TestCli:
    @pytest.fixture()
    def app(self, tmp_path):
        path = tmp_path / "index.php"
        path.write_text(VULN_SRC)
        return str(path)

    def test_basic_run(self, app, capsys):
        code = cli_main([app])
        out = capsys.readouterr().out
        assert code == 1  # vulnerabilities found
        assert "real vulnerability" in out

    def test_quiet(self, app, capsys):
        cli_main(["--quiet", app])
        out = capsys.readouterr().out.strip()
        assert out.count("\n") == 0

    def test_weapon_flag(self, app, capsys):
        cli_main(["-hei", "--quiet", app])
        out = capsys.readouterr().out
        assert "HI: 1" in out

    def test_original_mode(self, app, capsys):
        cli_main(["--original", "--quiet", app])
        out = capsys.readouterr().out
        assert "SQLI: 2" in out  # v2.1 cannot predict the new-symptom FP

    def test_original_plus_weapon_rejected(self, app):
        with pytest.raises(SystemExit):
            cli_main(["--original", "-hei", app])

    def test_fix_writes_file(self, app, capsys):
        code = cli_main(["--fix", app])
        assert code == 1
        fixed = app + ".fixed.php"
        assert os.path.exists(fixed)
        assert "san_sqli(" in open(fixed).read()

    def test_sanitizer_option(self, tmp_path, capsys):
        path = tmp_path / "esc.php"
        path.write_text("<?php $v = escape($_GET['x']); "
                        "mysql_query('q' . $v);")
        cli_main(["--sanitizer", "sqli:escape", "--quiet", str(path)])
        out = capsys.readouterr().out
        assert "0 vulnerabilities" in out

    def test_clean_file_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.php"
        path.write_text("<?php echo 'hello';")
        assert cli_main(["--quiet", str(path)]) == 0

    def test_weapon_dir_option(self, tmp_path, capsys):
        from repro.weapons import save_weapon
        weapon = generate_weapon(WeaponSpec(
            name="logx", flag="-logx",
            classes=(WeaponClassSpec("logx", "Log injection",
                                     ("syslog:1",)),),
            fix_template="user_sanitization",
            fix_malicious_chars=("\n",),
        ))
        wdir = tmp_path / "logx_weapon"
        save_weapon(weapon, str(wdir))
        target = tmp_path / "t.php"
        target.write_text("<?php syslog(LOG_INFO, $_GET['m']);")
        cli_main(["--weapon-dir", str(wdir), "-logx", "--quiet",
                  str(target)])
        out = capsys.readouterr().out
        assert "Log injection: 1" in out
