"""Tests for the Table II metrics and cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import ConfusionMatrix, cross_validate, kfold_indices
from repro.mining.classifiers import BernoulliNaiveBayes


class TestConfusionMatrix:
    def test_from_predictions(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        cm = ConfusionMatrix.from_predictions(y_true, y_pred)
        assert (cm.tp, cm.fp, cm.fn, cm.tn) == (2, 1, 1, 1)

    def test_paper_svm_numbers(self):
        """Plug in Table III's SVM matrix, expect Table II's SVM column."""
        cm = ConfusionMatrix(tp=121, fp=6, fn=7, tn=122)
        assert cm.tpp == pytest.approx(0.945, abs=0.001)
        assert cm.pfp == pytest.approx(0.047, abs=0.001)
        assert cm.prfp == pytest.approx(0.953, abs=0.001)
        assert cm.pd == pytest.approx(0.953, abs=0.001)
        assert cm.ppd == pytest.approx(0.946, abs=0.001)
        assert cm.acc == pytest.approx(0.949, abs=0.001)
        assert cm.pr == pytest.approx(0.949, abs=0.001)
        assert cm.inform == pytest.approx(0.898, abs=0.001)

    def test_paper_lr_numbers(self):
        cm = ConfusionMatrix(tp=119, fp=6, fn=9, tn=122)
        assert cm.tpp == pytest.approx(0.930, abs=0.001)
        assert cm.pfp == pytest.approx(0.047, abs=0.001)
        assert cm.acc == pytest.approx(0.941, abs=0.001)

    def test_paper_rf_numbers(self):
        cm = ConfusionMatrix(tp=116, fp=3, fn=12, tn=125)
        assert cm.tpp == pytest.approx(0.906, abs=0.001)
        assert cm.pfp == pytest.approx(0.023, abs=0.001)
        assert cm.prfp == pytest.approx(0.975, abs=0.001)
        assert cm.pd == pytest.approx(0.977, abs=0.001)

    def test_inform_identity(self):
        cm = ConfusionMatrix(tp=10, fp=2, fn=3, tn=20)
        assert cm.inform == pytest.approx(cm.tpp - cm.pfp)

    def test_addition(self):
        a = ConfusionMatrix(1, 2, 3, 4)
        b = ConfusionMatrix(10, 20, 30, 40)
        assert (a + b).as_row() == (11, 22, 33, 44)

    def test_zero_division_safe(self):
        cm = ConfusionMatrix(0, 0, 0, 0)
        for value in cm.metrics().values():
            assert value == value  # no NaN

    def test_metrics_dict_complete(self):
        cm = ConfusionMatrix(1, 1, 1, 1)
        assert set(cm.metrics()) == set(ConfusionMatrix.METRIC_NAMES)

    @given(st.integers(0, 50), st.integers(0, 50),
           st.integers(0, 50), st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_metric_bounds(self, tp, fp, fn, tn):
        cm = ConfusionMatrix(tp, fp, fn, tn)
        for name in ("tpp", "pfp", "prfp", "pd", "ppd", "acc", "pr",
                     "jacc"):
            value = getattr(cm, name)
            assert 0.0 <= value <= 1.0
        assert -1.0 <= cm.inform <= 1.0


class TestKFold:
    def test_partition_covers_everything(self):
        folds = kfold_indices(103, 10)
        joined = np.concatenate(folds)
        assert sorted(joined.tolist()) == list(range(103))

    def test_folds_disjoint(self):
        folds = kfold_indices(50, 5)
        seen = set()
        for fold in folds:
            assert not (set(fold.tolist()) & seen)
            seen |= set(fold.tolist())

    def test_deterministic(self):
        a = kfold_indices(64, 10, seed=1)
        b = kfold_indices(64, 10, seed=1)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestCrossValidate:
    def test_total_matches_dataset_size(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(64, 5)).astype(float)
        y = (X[:, 0] > 0).astype(np.int64)
        cm = cross_validate(BernoulliNaiveBayes, X, y, k=8)
        assert cm.total == 64

    def test_learnable_data_scores_high(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(100, 6)).astype(float)
        y = X[:, 0].astype(np.int64)
        cm = cross_validate(BernoulliNaiveBayes, X, y, k=10)
        assert cm.acc >= 0.95
