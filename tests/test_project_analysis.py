"""Tests for whole-project, cross-file analysis."""

import os

import pytest

from repro.analysis import ProjectAnalyzer
from repro.tool import Wape
from repro.vulnerabilities.catalog import sqli_info, xss_info
from repro.analysis.options import ScanOptions


@pytest.fixture()
def project(tmp_path):
    """A small multi-file application."""
    (tmp_path / "lib.php").write_text("""<?php
function clean($v) {
    return mysql_real_escape_string($v);
}
function run_query($sql) {
    return mysql_query($sql);
}
function render($html) {
    echo $html;
}
""")
    (tmp_path / "index.php").write_text("""<?php
require 'lib.php';
$a = clean($_GET['a']);
mysql_query("SELECT x FROM t WHERE a = '" . $a . "'");
run_query("SELECT y FROM t WHERE b = '" . $_GET['b'] . "'");
render($_GET['c']);
""")
    (tmp_path / "internal.php").write_text("""<?php
function leaky() {
    mysql_query($_GET['direct']);
}
""")
    return str(tmp_path)


def analyzer():
    return ProjectAnalyzer([sqli_info().config, xss_info().config])


class TestProjectAnalyzer:
    def test_cross_file_sanitizer_resolved(self, project):
        result = analyzer().analyze_tree(project)
        # the clean() flow must NOT be reported
        entries = {c.entry_point for c in result.candidates}
        assert "$_GET['a']" not in entries

    def test_cross_file_sink_flow_reported_at_callee(self, project):
        result = analyzer().analyze_tree(project)
        flows = [c for c in result.candidates
                 if c.entry_point == "$_GET['b']"]
        assert len(flows) == 1
        assert flows[0].filename.endswith("lib.php")
        assert flows[0].vuln_class == "sqli"

    def test_cross_file_echo_sink(self, project):
        result = analyzer().analyze_tree(project)
        flows = [c for c in result.candidates
                 if c.entry_point == "$_GET['c']"]
        assert len(flows) == 1
        assert flows[0].vuln_class == "xss"

    def test_internal_flow_reported_once(self, project):
        result = analyzer().analyze_tree(project)
        directs = [c for c in result.candidates
                   if c.entry_point == "$_GET['direct']"]
        assert len(directs) == 1
        assert directs[0].filename.endswith("internal.php")

    def test_function_table_spans_project(self, project):
        pa = analyzer()
        files = pa.load(project)
        table = pa.build_function_table(files)
        assert {"clean", "run_query", "render", "leaky"} <= set(table)

    def test_parse_error_does_not_abort_project(self, project):
        with open(os.path.join(project, "broken.php"), "w") as f:
            f.write("<?php $x = ;")
        result = analyzer().analyze_tree(project)
        broken = [f for f in result.files if f.parse_error]
        assert len(broken) == 1
        assert result.candidates  # the rest still analyzed

    def test_candidates_sorted_and_unique(self, project):
        result = analyzer().analyze_tree(project)
        keys = [c.key() for c in result.candidates]
        assert len(keys) == len(set(keys))
        assert keys == sorted(
            keys, key=lambda k: (k[1], k[2], k[0]))

    def test_detector_input_accepted(self, project):
        from repro.analysis import Detector
        pa = ProjectAnalyzer(Detector([sqli_info().config]))
        result = pa.analyze_tree(project)
        assert result.candidates


class TestWapeProjectMode:
    def test_project_mode_beats_per_file_on_both_axes(self, project):
        tool = Wape()
        # includes=False is the pure per-file baseline; the default tree
        # scan resolves the require edge and matches project mode here
        per_file = tool.analyze_tree(project, ScanOptions(includes=False))
        whole = tool.analyze_project(project)
        per_file_entries = {o.candidate.entry_point
                            for o in per_file.real_vulnerabilities}
        whole_entries = {o.candidate.entry_point
                         for o in whole.real_vulnerabilities}
        # the cross-file-sanitized flow is a false alarm only per-file
        assert "$_GET['a']" in per_file_entries
        assert "$_GET['a']" not in whole_entries
        # flows through cross-file helpers into sinks are found only
        # project-wide
        assert "$_GET['b']" not in per_file_entries
        assert {"$_GET['b']", "$_GET['c']"} <= whole_entries

    def test_include_aware_tree_scan_matches_project_mode(self, project):
        tool = Wape()
        tree = tool.analyze_tree(project)
        entries = {o.candidate.entry_point
                   for o in tree.real_vulnerabilities}
        assert "$_GET['a']" not in entries   # cross-file sanitizer seen
        assert "$_GET['c']" in entries       # cross-file helper-to-sink

    def test_project_report_structure(self, project):
        report = Wape().analyze_project(project)
        assert report.total_files == 3
        assert report.total_lines > 0
        data = report.to_dict()
        assert data["summary"]["real_vulnerabilities"] == \
            len(report.real_vulnerabilities)

    def test_rfi_lfi_refinement_in_project_mode(self, tmp_path):
        (tmp_path / "inc.php").write_text(
            "<?php include 'mods/' . $_GET['m'] . '.php';\n"
            "include $_GET['full'];\n")
        report = Wape().analyze_project(str(tmp_path))
        classes = sorted(o.vuln_class for o in report.outcomes)
        assert classes == ["lfi", "rfi"]


class TestCliProjectAndJson:
    def test_cli_project_flag(self, project, capsys):
        from repro.tool.cli import main as cli_main
        cli_main(["--project", "--quiet", project])
        out = capsys.readouterr().out
        assert "vulnerabilities" in out

    def test_cli_json_output(self, project, capsys):
        import json
        from repro.tool.cli import main as cli_main
        cli_main(["--json", project])
        data = json.loads(capsys.readouterr().out)
        assert data["tool"] == "WAPe"
        assert data["summary"]["files"] == 3
        assert all("findings" in f for f in data["files"])
