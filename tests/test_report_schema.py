"""Versioned JSON report schema: emission, upgrade, rejection."""

import json

import pytest

from repro.exceptions import ReportSchemaError
from repro.tool.report import (
    SCHEMA_VERSION,
    AnalysisReport,
    FileReport,
    load_report_dict,
    upgrade_report_dict,
)


def make_report():
    report = AnalysisReport("WAPe", "app/")
    report.files.append(FileReport("app/clean.php", lines_of_code=3,
                                   seconds=0.001))
    report.files.append(FileReport("app/bad.php", lines_of_code=1,
                                   parse_error="app/bad.php:1:1: boom"))
    return report


def make_v1_dict():
    """The historical unversioned shape: no marker, sparse summary."""
    return {
        "tool": "WAPe",
        "target": "app/",
        "summary": {"files": 1, "lines": 3, "candidates": 0},
        "files": [{"path": "app/a.php", "lines": 3, "seconds": 0.0,
                   "parse_error": None, "findings": []}],
    }


class TestEmission:
    def test_to_dict_carries_current_version(self):
        data = make_report().to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["service"] is None

    def test_round_trip_is_identity(self):
        data = make_report().to_dict()
        assert load_report_dict(json.dumps(data)) == data

    def test_all_summary_counters_always_present(self):
        summary = AnalysisReport("WAPe", "x").to_dict()["summary"]
        for key in ("files", "lines", "seconds", "candidates",
                    "real_vulnerabilities", "predicted_false_positives",
                    "parse_errors", "parse_warnings",
                    "recovered_statements", "resolved_includes",
                    "unresolved_includes", "by_class"):
            assert key in summary


class TestUpgrade:
    def test_v1_is_lifted_to_current(self):
        out = upgrade_report_dict(make_v1_dict())
        assert out["schema_version"] == SCHEMA_VERSION
        assert out["cache"] is None
        assert out["stats"] is None
        assert out["service"] is None
        assert out["summary"]["real_vulnerabilities"] == 0
        assert out["summary"]["by_class"] == {}
        entry = out["files"][0]
        assert entry["parse_warning"] is None
        assert entry["resolved_includes"] == 0

    def test_v1_existing_values_survive(self):
        out = upgrade_report_dict(make_v1_dict())
        assert out["summary"]["files"] == 1
        assert out["files"][0]["path"] == "app/a.php"

    def test_upgrade_does_not_mutate_input(self):
        original = make_v1_dict()
        snapshot = json.loads(json.dumps(original))
        upgrade_report_dict(original)
        assert original == snapshot

    def test_current_version_passes_through(self):
        data = make_report().to_dict()
        assert upgrade_report_dict(data) == data


class TestRejection:
    def test_newer_version_is_rejected(self):
        data = make_report().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ReportSchemaError, match="upgrade the reader"):
            upgrade_report_dict(data)

    @pytest.mark.parametrize("version", ["2", 2.0, True, 0, -1, None])
    def test_malformed_version_marker(self, version):
        data = make_v1_dict()
        data["schema_version"] = version
        with pytest.raises(ReportSchemaError, match="schema_version"):
            upgrade_report_dict(data)

    @pytest.mark.parametrize("missing", ["tool", "target", "summary",
                                         "files"])
    def test_missing_required_key(self, missing):
        data = make_v1_dict()
        del data[missing]
        with pytest.raises(ReportSchemaError, match=missing):
            upgrade_report_dict(data)

    def test_non_object_report(self):
        with pytest.raises(ReportSchemaError, match="JSON object"):
            upgrade_report_dict([1, 2, 3])

    def test_invalid_json_text(self):
        with pytest.raises(ReportSchemaError, match="not valid JSON"):
            load_report_dict("{nope")
