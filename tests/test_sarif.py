"""SARIF 2.1.0 export: shape, levels, determinism, code flows."""

import json
import os

import pytest

from repro.analysis.options import ScanOptions
from repro.exceptions import ReportSchemaError
from repro.tool.report import FINGERPRINT_ALGORITHM, report_fingerprints
from repro.tool.sarif import (
    SARIF_VERSION,
    report_to_sarif,
    write_sarif,
)
from repro.tool.wap import Wape

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")


@pytest.fixture(scope="module")
def report():
    return Wape().analyze_tree(DEMO_APP, ScanOptions(jobs=1)).to_dict()


@pytest.fixture(scope="module")
def sarif(report):
    return report_to_sarif(report)


class TestShape:
    def test_log_envelope(self, sarif):
        assert sarif["version"] == SARIF_VERSION
        assert "sarif-schema-2.1.0" in sarif["$schema"]
        assert len(sarif["runs"]) == 1

    def test_driver_and_rules(self, sarif, report):
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "wape"
        assert driver["version"] == report["tool"]
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]

    def test_one_result_per_finding(self, sarif, report):
        results = sarif["runs"][0]["results"]
        assert len(results) == len(report_fingerprints(report))

    def test_result_required_fields(self, sarif):
        rule_ids = {rule["id"]
                    for rule in sarif["runs"][0]["tool"]["driver"]["rules"]}
        for result in sarif["runs"][0]["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("error", "note", "warning")
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            uri = location["artifactLocation"]["uri"]
            assert not uri.startswith("/") and "\\" not in uri
            assert location["region"]["startLine"] >= 1

    def test_fingerprints_match_the_report(self, sarif, report):
        exported = {result["partialFingerprints"][FINGERPRINT_ALGORITHM]
                    for result in sarif["runs"][0]["results"]}
        assert exported == set(report_fingerprints(report))

    def test_results_sorted_by_fingerprint(self, sarif):
        fingerprints = [
            result["partialFingerprints"][FINGERPRINT_ALGORITHM]
            for result in sarif["runs"][0]["results"]]
        assert fingerprints == sorted(fingerprints)

    def test_levels_follow_verdicts(self, sarif):
        levels = {result["level"]
                  for result in sarif["runs"][0]["results"]}
        # the demo app has both real findings and one predicted FP
        assert levels == {"error", "note"}

    def test_code_flows_cover_the_taint_path(self, sarif, report):
        findings = {f["fingerprint"]: f
                    for e in report["files"] for f in e["findings"]}
        flowed = 0
        for result in sarif["runs"][0]["results"]:
            finding = findings[
                result["partialFingerprints"][FINGERPRINT_ALGORITHM]]
            if not finding["path"]:
                continue
            flowed += 1
            locations = result["codeFlows"][0]["threadFlows"][0][
                "locations"]
            assert len(locations) == len(finding["path"])
            for hop, step in zip(locations, finding["path"]):
                assert step["kind"] in hop["location"]["message"]["text"]
        assert flowed > 0


class TestSerialization:
    def test_write_sarif_is_deterministic(self, report, tmp_path):
        first, second = tmp_path / "a.sarif", tmp_path / "b.sarif"
        write_sarif(str(first), report)
        write_sarif(str(second), report)
        assert first.read_bytes() == second.read_bytes()
        assert json.loads(first.read_text())["version"] == SARIF_VERSION

    def test_accepts_older_report_versions(self):
        sarif = report_to_sarif({
            "tool": "WAPe", "target": "app/",
            "summary": {"files": 1},
            "files": [{"path": "app/a.php", "lines": 1, "seconds": 0.0,
                       "parse_error": None,
                       "findings": [{"class": "xss", "group": "XSS",
                                     "sink": "echo", "sink_line": 2,
                                     "entry_point": "$_GET['q']",
                                     "entry_line": 2, "verdict": "real",
                                     "votes": {}, "symptoms": [],
                                     "path": []}]}],
        })
        result = sarif["runs"][0]["results"][0]
        assert result["ruleId"] == "xss"
        assert result["partialFingerprints"][FINGERPRINT_ALGORITHM]

    def test_rejects_unreadable_input(self):
        with pytest.raises(ReportSchemaError):
            report_to_sarif({"schema_version": 99, "tool": "x",
                             "target": "x", "summary": {}, "files": []})
