"""Candidate provenance and the ``wape-explain`` command.

One scenario per detector sub-module (query injection, client-side
injection, RCE & file injection), plus the §V-A sanitizer-awareness
story and the CLI filters/JSON output.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry.provenance import (
    STAGE_GUARD,
    STAGE_PROPAGATE,
    STAGE_SINK,
    STAGE_SOURCE,
    build_provenance,
)
from repro.tool import explain
from repro.tool.wap import Wape


@pytest.fixture(scope="module")
def tool():
    return Wape()


def _one_candidate(tool, source, vuln_class):
    report = tool.analyze_source(source, "probe.php")
    matches = [o for o in report.outcomes
               if o.candidate.vuln_class == vuln_class]
    assert matches, f"no {vuln_class} candidate in {source!r}"
    return matches[0]


class TestBuildProvenance:
    def test_query_injection_provenance(self, tool):
        outcome = _one_candidate(
            tool, "<?php $q = $_GET['q']; mysql_query($q);", "sqli")
        prov = build_provenance(outcome.candidate, outcome.prediction)
        stages = [e.stage for e in prov.events]
        assert stages[0] == STAGE_SOURCE
        assert stages[-1] == STAGE_SINK
        assert STAGE_PROPAGATE in stages
        assert prov.events[0].detail == "read of $_GET['q']"
        assert "taint born here" in prov.events[0].note
        assert "mysql_query" in prov.events[-1].detail
        assert prov.verdict == "real"
        assert dict(prov.votes)  # per-classifier votes present

    def test_client_side_injection_provenance(self, tool):
        outcome = _one_candidate(tool, "<?php echo $_GET['x'];", "xss")
        prov = build_provenance(outcome.candidate, outcome.prediction)
        assert prov.vuln_class == "xss"
        sink = prov.events[-1]
        assert sink.stage == STAGE_SINK
        assert "echo" in sink.detail and "class xss" in sink.note

    def test_file_injection_provenance(self, tool):
        outcome = _one_candidate(
            tool, "<?php include($_GET['p']);", "rfi")
        prov = build_provenance(outcome.candidate, outcome.prediction)
        assert prov.vuln_class == "rfi"
        assert prov.events[-1].note.startswith("include sink")

    def test_unregistered_sanitizer_is_called_out(self, tool):
        # the §V-A vfront scenario: `escape` is NOT known to the tool
        source = ("<?php $q = escape($_GET['q']); "
                  "mysql_query($q);")
        outcome = _one_candidate(tool, source, "sqli")
        prov = build_provenance(outcome.candidate, outcome.prediction,
                                sanitizers={"mysql_real_escape_string"})
        call = next(e for e in prov.events if "escape()" in e.detail)
        assert "not a registered sqli sanitizer" in call.note
        assert "taint preserved" in call.note

    def test_guard_is_a_symptom_not_sanitization(self, tool):
        source = ("<?php $q = $_GET['q']; "
                  "if (is_numeric($q)) { mysql_query($q); }")
        outcome = _one_candidate(tool, source, "sqli")
        prov = build_provenance(outcome.candidate, outcome.prediction)
        guard = next(e for e in prov.events if e.stage == STAGE_GUARD)
        assert "is_numeric" in guard.detail
        assert "does not untaint" in guard.note

    def test_summary_replayed_hops_carry_a_provenance_note(self, tool):
        # a param/return hop attributed to a foreign file means the
        # callee's behaviour came from the include closure's composed
        # summary, and the provenance must say so
        from repro.analysis.model import (
            STEP_PARAM,
            STEP_RETURN,
            STEP_SINK,
            STEP_SOURCE,
            CandidateVulnerability,
            PathStep,
        )

        candidate = CandidateVulnerability(
            vuln_class="xss", filename="/proj/index.php",
            sink_name="echo", sink_line=3,
            entry_point="$_GET['q']", entry_line=2,
            path=(
                PathStep(STEP_SOURCE, "$_GET['q']", 2),
                PathStep(STEP_PARAM, "$x of q()", 1, "/proj/lib.php"),
                PathStep(STEP_RETURN, "q", 1, "/proj/lib.php"),
                PathStep(STEP_SINK, "echo", 3),
            ))
        prov = build_provenance(candidate, None)
        foreign = [e for e in prov.events if e.file == "/proj/lib.php"]
        assert len(foreign) == 2
        for event in foreign:
            assert "composed function summary" in event.note
            assert "inter-procedural propagation" in event.note
        # same-file hops stay unannotated
        assert "summary" not in prov.events[0].note
        assert "summary" not in prov.events[-1].note

    def test_model_convenience_method_and_render(self, tool):
        outcome = _one_candidate(tool, "<?php echo $_COOKIE['u'];", "xss")
        prov = outcome.candidate.provenance(outcome.prediction)
        text = prov.render()
        assert text.startswith("xss candidate at probe.php:")
        assert "source:" in text and "sink:" in text
        assert "verdict: REAL vulnerability" in text
        doc = prov.to_dict()
        assert doc["class"] == "xss"
        assert doc["events"][0]["stage"] == STAGE_SOURCE


class TestExplainCommand:
    def test_explains_each_submodule_candidate(self, tmp_path, capsys):
        (tmp_path / "a.php").write_text(
            "<?php mysql_query($_GET['q']); echo $_GET['x']; "
            "include($_GET['p']);")
        assert explain.main([str(tmp_path / "a.php")]) == 0
        out = capsys.readouterr().out
        assert "sqli candidate" in out
        assert "xss candidate" in out
        assert "rfi candidate" in out
        assert "not a registered" not in out  # no call hops here

    def test_class_and_line_filters(self, tmp_path, capsys):
        (tmp_path / "a.php").write_text(
            "<?php\nmysql_query($_GET['q']);\necho $_GET['x'];")
        assert explain.main(["--class", "xss",
                             str(tmp_path / "a.php")]) == 0
        out = capsys.readouterr().out
        assert "xss candidate" in out and "sqli" not in out
        assert explain.main(["--line", "2",
                             str(tmp_path / "a.php")]) == 0
        out = capsys.readouterr().out
        assert "sqli candidate" in out and "xss candidate" not in out

    def test_registered_sanitizer_hops_are_annotated(self, tmp_path,
                                                     capsys):
        # registering `escape` via --sanitizer silences the flow, so the
        # unregistered run must explain exactly why it was kept
        (tmp_path / "a.php").write_text(
            "<?php $q = escape($_GET['q']); mysql_query($q);")
        assert explain.main([str(tmp_path / "a.php")]) == 0
        out = capsys.readouterr().out
        assert "not a registered sqli sanitizer — taint preserved" in out
        assert explain.main(["--sanitizer", "sqli:escape",
                             str(tmp_path / "a.php")]) == 1
        out = capsys.readouterr().out
        assert "no matching candidates" in out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "a.php").write_text("<?php echo $_GET['x'];")
        assert explain.main(["--json", str(tmp_path / "a.php")]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 1
        assert docs[0]["class"] == "xss"
        assert docs[0]["verdict"] == "real"
        stages = [e["stage"] for e in docs[0]["events"]]
        assert stages[0] == "source" and stages[-1] == "sink"

    def test_directory_target(self, tmp_path, capsys):
        app = tmp_path / "app"
        app.mkdir()
        (app / "a.php").write_text("<?php mysql_query($_GET['q']);")
        (app / "b.php").write_text("<?php echo 1;")
        assert explain.main([str(app)]) == 0
        out = capsys.readouterr().out
        assert "sqli candidate" in out
