"""Tests for the evaluation helpers (classifier comparison, curves)."""

import pytest

from repro.mining import build_dataset
from repro.mining.evaluation import (
    CLASSIFIER_POOL,
    compare_classifiers,
    learning_curve,
    render_rows,
    select_top3,
)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("new")


@pytest.fixture(scope="module")
def rows(dataset):
    # a cheap pool subset keeps the test fast while exercising the code
    from repro.mining.classifiers import (
        BernoulliNaiveBayes,
        KNearestNeighbors,
        LinearSVM,
        LogisticRegression,
    )
    return compare_classifiers(
        dataset, (LinearSVM, LogisticRegression, BernoulliNaiveBayes,
                  KNearestNeighbors), k=5)


class TestComparison:
    def test_one_row_per_classifier(self, rows):
        assert len(rows) == 4
        assert len({r.name for r in rows}) == 4

    def test_matrices_cover_dataset(self, rows, dataset):
        for row in rows:
            assert row.matrix.total == dataset.size

    def test_select_top3(self, rows):
        top = select_top3(rows)
        assert len(top) == 3
        accs = [r.matrix.acc for r in rows]
        assert top[0].matrix.acc == max(accs)
        # the excluded classifier is the least accurate
        excluded = ({r.name for r in rows}
                    - {r.name for r in top}).pop()
        worst = min(rows, key=lambda r: (r.matrix.acc, r.matrix.tpp))
        assert excluded == worst.name

    def test_render_rows(self, rows):
        text = render_rows(rows)
        assert "classifier" in text
        for row in rows:
            assert row.name in text

    def test_pool_has_six_members(self):
        assert len(CLASSIFIER_POOL) == 6


class TestLearningCurve:
    def test_sizes_respected(self, dataset):
        curve = learning_curve(dataset, sizes=(40, 80), k=4)
        assert [size for size, _ in curve] == [40, 80]
        for size, cm in curve:
            assert cm.total == size

    def test_oversize_clamped(self, dataset):
        curve = learning_curve(dataset, sizes=(9_999,), k=4)
        assert curve[0][0] == dataset.size

    def test_subsets_stratified(self, dataset):
        curve = learning_curve(dataset, sizes=(64,), k=4)
        cm = curve[0][1]
        # balanced halves: 32 FP + 32 RV
        assert cm.tp + cm.fn == 32
        assert cm.fp + cm.tn == 32

    def test_full_size_beats_small(self, dataset):
        curve = dict(learning_curve(dataset, sizes=(48, 256), k=8))
        assert curve[256].acc > curve[48].acc
