"""Tests for the PHP unparser, including the round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.php import ast, parse, unparse, unparse_expr

SNIPPETS = [
    "<?php $x = 1;",
    "<?php $x = $_GET['id'];",
    "<?php echo $a, $b;",
    "<?php echo \"user: $name\";",
    "<?php $q = \"SELECT * FROM t WHERE id = {$id}\";",
    "<?php if ($a) { f(); } elseif ($b) { g(); } else { h(); }",
    "<?php while ($i < 10) { $i++; }",
    "<?php do { $i--; } while ($i);",
    "<?php for ($i = 0; $i < 10; $i++) echo $i;",
    "<?php foreach ($rows as $k => $v) { echo $v; }",
    "<?php foreach ($rows as &$v) { $v = 1; }",
    "<?php switch ($x) { case 1: break; default: exit('no'); }",
    "<?php function f($a, $b = 1, &$c) { return $a . $b; }",
    "<?php function f(int $a, ?string $b): string { return $b; }",
    "<?php class C extends B implements I { public $p = 1; "
    "const K = 'v'; public function m($x) { return $this->p; } }",
    "<?php interface I { public function f(); }",
    "<?php $f = function ($x) use ($y) { return $x + $y; };",
    "<?php try { f(); } catch (A | B $e) { g($e); } finally { h(); }",
    "<?php throw new Exception('x');",
    "<?php $a = isset($_GET['x']) ? (int)$_GET['x'] : 0;",
    "<?php $a = $_POST['y'] ?? 'default';",
    "<?php $arr = array('a' => 1, 'b' => [2, 3], [4]);",
    "<?php list($a, , $c) = explode(',', $s);",
    "<?php global $db; static $n = 0; unset($tmp);",
    "<?php $cmd = `ls -la $dir`; $out = @system($cmd);",
    "<?php require_once 'config.php'; include $path;",
    "<?php $x = -$y + +$z * ~$w ** 2;",
    "<?php $s = 'it\\'s';",
    "<?php Db::query($sql); $o::$prop; C::CONST_NAME;",
    "<?php $obj->a->b()->c['d'] = 1;",
    "<?php namespace My\\App; use Foo\\Bar as Baz;",
    "<?php print $x and $y or $z xor $w;",
    "<?php $v = new $cls($arg); $w = clone $v;",
    "<html><p>x</p><?php echo 1; ?><div>y</div>",
]


def normalize(source: str) -> str:
    """One unparse pass normalizes formatting; output is then a fixpoint."""
    return unparse(parse(source))


class TestRoundTrip:
    @pytest.mark.parametrize("src", SNIPPETS)
    def test_unparse_reparses(self, src):
        out = normalize(src)
        reparsed = parse(out)  # must not raise
        assert reparsed.body is not None

    @pytest.mark.parametrize("src", SNIPPETS)
    def test_unparse_is_fixpoint(self, src):
        once = normalize(src)
        twice = normalize(once)
        assert once == twice

    @pytest.mark.parametrize("src", SNIPPETS)
    def test_tree_shape_preserved(self, src):
        tree1 = parse(src)
        tree2 = parse(unparse(tree1))

        def shape(tree):
            # node type sequence is invariant under formatting, except
            # Block collapsing; compare the multiset of node types
            from collections import Counter
            return Counter(type(n).__name__ for n in tree.walk()
                           if not isinstance(n, (ast.InlineHTML, ast.Block)))

        assert shape(tree1) == shape(tree2)


class TestExprRendering:
    def test_string_quoting(self):
        assert unparse_expr(ast.Literal("a'b", "string")) == "'a\\'b'"

    def test_interpolated_rendering(self):
        tree = parse('<?php $q = "WHERE id = $id";')
        out = unparse(tree)
        assert '"WHERE id = {$id}"' in out

    def test_dq_escapes_rendered(self):
        tree = parse('<?php $s = "a\\nb$x";')
        out = unparse(tree)
        assert "\\n" in out

    def test_null_bool(self):
        assert unparse_expr(ast.Literal(None, "null")) == "null"
        assert unparse_expr(ast.Literal(True, "bool")) == "true"


class TestHtmlRoundTrip:
    def test_html_preserved(self):
        src = "<h1>Title</h1>\n<?php echo 1; ?>\n<footer>f</footer>"
        out = normalize(src)
        assert "<h1>Title</h1>" in out
        assert "<footer>f</footer>" in out

    def test_stability_with_html(self):
        src = "<a>\n<?php $x = 1; ?>\n</a>\n"
        once = normalize(src)
        assert normalize(once) == once


@st.composite
def php_expressions(draw):
    """Generate small random PHP expressions as source text."""
    base = draw(st.sampled_from(
        ["$a", "$b", "1", "2.5", "'s'", "$_GET['x']", "foo()", "$o->p"]))
    depth = draw(st.integers(min_value=0, max_value=3))
    expr = base
    for _ in range(depth):
        op = draw(st.sampled_from([" . ", " + ", " == ", " && "]))
        rhs = draw(st.sampled_from(["$c", "3", "'t'", "bar($a)"]))
        expr = f"({expr}{op}{rhs})"
    return expr


class TestProperties:
    @given(php_expressions())
    @settings(max_examples=150, deadline=None)
    def test_random_expression_round_trip(self, expr):
        src = f"<?php $x = {expr};"
        out = normalize(src)
        assert normalize(out) == out
