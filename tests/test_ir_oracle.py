"""Differential oracle: the IR engine vs. the original AST walker.

The taint engine was rewritten from a recursive AST interpreter to a
tight loop over the flat opcode IR (``repro.ir``).  The old walker is
kept verbatim in ``repro.analysis.astwalk`` as a reference
implementation; these tests run both over the same inputs — a snippet
battery, the grammar round-trip corpus and every file of the demo
application — and assert **byte-identical** findings: candidate lists
(class, sink, entry point, full path steps, guards, context) and the
exported top-level env must compare equal, dataclass field by dataclass
field.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.astwalk import ReferenceTaintEngine
from repro.analysis.engine import TaintEngine
from repro.exceptions import PhpSyntaxError
from repro.php import parse, parse_with_recovery
from repro.tool.wap import Wape

from tests.test_php_grammar_corpus import TestRoundTripIdentity

DEMO_APP = os.path.join(os.path.dirname(__file__), "..", "examples",
                        "demo_app")


@pytest.fixture(scope="module")
def engines():
    """The full shipped knowledge base, fused exactly like the pipeline."""
    groups = [list(g.configs) for g in Wape()._config_groups()]
    configs = [cfg for group in groups for cfg in group]
    return (ReferenceTaintEngine(configs, groups),
            TaintEngine(configs, groups))


def assert_identical(engines, program, filename) -> int:
    reference, compiled = engines
    want, want_env = reference.analyze_with_env(program, filename)
    got, got_env = compiled.analyze_with_env(program, filename)
    assert got == want
    assert got_env == want_env
    return len(want)


SNIPPETS = [
    # direct flows, propagation and sanitization
    "mysql_query($_GET['q']);",
    "$id = $_GET['id']; mysql_query($id);",
    "$q = 'SELECT * FROM t WHERE c = ' . $_GET['c']; mysql_query($q);",
    '$id = $_POST["id"]; $q = "WHERE id = $id"; mysql_query($q);',
    "$s = mysql_real_escape_string($_GET['x']); mysql_query($s);",
    "$s = htmlspecialchars($_GET['x']); echo $s; mysql_query($s);",
    "$x = (int) $_GET['n']; mysql_query($x); echo (string) $_GET['n'];",
    "$a = $_GET['a'] + 1; mysql_query($a);",
    "$x = $_GET['x'] ?? 'd'; echo $x; echo $_GET['y'] ?: 'z';",
    # echo family, includes, shell
    "echo $_GET['msg']; print $_COOKIE['c']; exit($_POST['e']);",
    "include $_GET['page']; require_once $_REQUEST['mod'];",
    "echo `cat {$_GET['f']}`;",
    "system($_GET['cmd']); $out = shell_exec($_POST['c']); echo $out;",
    # superglobal specifics
    "echo $_SERVER['HTTP_USER_AGENT']; echo $_SERVER['SERVER_NAME'];",
    "echo $_SERVER[$k]; $s = $_SERVER; echo $s;",
    "$g = $_GET; echo $g; echo $_FILES['up']['name'];",
    # guards and validation symptoms
    "if (is_numeric($_GET['n'])) { mysql_query($_GET['n']); }",
    "if (!preg_match('/^\\d+$/', $_GET['id'])) exit; "
    "mysql_query($_GET['id']);",
    "if (isset($_GET['p'])) { include $_GET['p']; }",
    "if (empty($_POST['x'])) { echo 'no'; } else { echo $_POST['x']; }",
    "if (!ctype_digit($_GET['a'])) return; echo $_GET['a'];",
    "if (!is_int($_GET['b'])) throw new E('x'); mysql_query($_GET['b']);",
    # control flow joins
    "if ($c) { $x = $_GET['a']; } else { $x = 'safe'; } mysql_query($x);",
    "if ($c) { $x = 'a'; } elseif ($d) { $x = $_GET['b']; } "
    "else { $x = 'c'; } echo $x;",
    "$q = 'SELECT'; while ($r) { $q .= $_GET['w']; } mysql_query($q);",
    "do { $q = $_GET['x']; } while ($i--); echo $q;",
    "for ($i = 0; $i < 9; $i++) { $s .= $_GET['p']; } mysql_query($s);",
    "foreach ($_POST as $k => $v) { echo $v; echo $k; }",
    "foreach ($rows as list($a, $b)) { echo $a; } "
    "foreach ($rows as [$c, $d]) { echo $d; }",
    "switch ($_GET['t']) { case 'a': $x = $_GET['v']; break; "
    "default: $x = 1; } mysql_query($x);",
    "try { $x = $_GET['a']; } catch (E $e) { $x = 'safe'; } "
    "finally { echo $x; }",
    # assignments, arrays, properties
    "$a[] = $_GET['v']; $a['k'] = $_POST['w']; mysql_query($a);",
    "$o->p = $_GET['x']; echo $o->p; $o->q->r = $_GET['y']; echo $o->q->r;",
    "C::$stat = $_GET['s']; echo C::$stat;",
    "list($a, $b) = [$_GET['x'], 2]; echo $a;",
    "$x = $y = $_GET['chain']; mysql_query($x); mysql_query($y);",
    "$arr = ['a' => $_GET['k'], $_POST['v']]; mysql_query($arr);",
    "unset($x); $x = $_GET['u']; unset($x); echo $x;",
    "$$name = $_GET['vv']; echo $$name;",
    # functions and summaries
    "function f($a) { return $a; } mysql_query(f($_GET['x']));",
    "function g($a) { mysql_query($a); } g($_GET['y']);",
    "function h() { return $_GET['inner']; } echo h();",
    "function s($a) { return addslashes($a); } mysql_query(s($_GET['z']));",
    "function rec($a) { return rec($a) . $a; } echo rec($_GET['r']);",
    "function outer($a) { return inner($a); } "
    "function inner($b) { return $b; } mysql_query(outer($_GET['n']));",
    "function dead($p) { mysql_query($p); echo $_GET['in_dead']; }",
    # classes, methods, static and dynamic calls
    "class D { function m($a) { mysql_query($a); } } "
    "$d = new D(); $d->m($_GET['q']);",
    "class E2 { static function sm($a) { return $a; } } "
    "echo E2::sm($_GET['s']);",
    "$pdo->query($_GET['sql']); $st = $mysqli->prepare($_POST['p']);",
    "$f = 'strtolower'; echo $f($_GET['d']); $obj->$meth($_GET['dm']);",
    "echo call_user_func('x', $_GET['cb']);",
    "$n = new SomeCls($_GET['ctor']); echo $n; echo clone $q;",
    # closures, arrows, ternary, match
    "$fn = function ($x) use ($v) { echo $v; mysql_query($x); }; "
    "$v = $_GET['use']; $fn($_GET['arg']);",
    "$a = fn($y) => $y . $_GET['arrow']; echo $a(1);",
    "$t = $c ? $_GET['then'] : 'else'; mysql_query($t);",
    "echo match($_GET['m']) { 'a' => $_GET['r1'], default => 'safe' };",
    # interpolation corners
    '$n = $_GET["name"]; echo "Hello $n and {$_POST[\'other\']}!";',
    'echo "no vars here"; echo "{$obj->prop} and $plain";',
    # namespaces, goto, misc statement shapes
    "namespace A; echo $_GET['ns'];",
    "goto end; echo $_GET['skipped']; end: echo $_GET['after'];",
    "global $gv; static $sv = 1; echo $_GET['after_decls'];",
    "@mysql_query($_GET['sup']); echo @$_GET['sup2'];",
    "echo isset($_GET['i']) . empty($_GET['e']) . ($x instanceof Foo);",
]


class TestSnippetBattery:
    @pytest.mark.parametrize("source", SNIPPETS, ids=range(len(SNIPPETS)))
    def test_identical_findings(self, engines, source):
        program = parse("<?php " + source, "t.php")
        assert_identical(engines, program, "t.php")


class TestGrammarCorpus:
    CORPUS = TestRoundTripIdentity.CORPUS

    @pytest.mark.parametrize("source", CORPUS, ids=range(len(CORPUS)))
    def test_identical_findings(self, engines, source):
        program = parse(source, "t.php")
        assert_identical(engines, program, "t.php")


class TestDemoApp:
    def test_every_demo_file_identical(self, engines):
        total = 0
        files = 0
        for root, _dirs, names in os.walk(DEMO_APP):
            for name in sorted(names):
                if not name.endswith(".php"):
                    continue
                path = os.path.join(root, name)
                with open(path, encoding="utf-8", errors="replace") as fh:
                    source = fh.read()
                try:
                    program, _warnings = parse_with_recovery(source, name)
                except PhpSyntaxError:
                    continue  # e.g. broken.php: unlexable on purpose
                total += assert_identical(engines, program, name)
                files += 1
        assert files >= 10
        assert total > 0  # the demo app is seeded with real flows


class TestCrossFileParity:
    """extra_functions (project mode) and initial_env (include mode)."""

    def test_foreign_declarations(self, engines):
        reference, compiled = engines
        lib = parse("<?php function mk($a) { return 'WHERE ' . $a; }\n"
                    "function leak() { return $_GET['lib']; }\n"
                    "class Db { function run($q) { mysql_query($q); } }",
                    "lib.php")
        decls = {}
        for node in lib.body:
            if hasattr(node, "params"):
                decls[node.name.lower()] = (node, "lib.php")
            elif hasattr(node, "members"):
                for member in node.members:
                    if getattr(member, "body", None):
                        key = f"{node.name.lower()}::{member.name.lower()}"
                        decls[key] = (member, "lib.php")
                        decls.setdefault(member.name.lower(),
                                         (member, "lib.php"))
        main = parse("<?php $q = mk($_GET['x']); mysql_query($q);\n"
                     "echo leak();\n"
                     "$db = new Db(); $db->run($_POST['y']);", "main.php")
        want, want_env = reference.analyze_with_env(
            main, "main.php", extra_functions=decls)
        got, got_env = compiled.analyze_with_env(
            main, "main.php", extra_functions=decls)
        assert got == want
        assert got_env == want_env
        assert want  # the scenario actually produces findings

    def test_initial_env(self, engines):
        reference, compiled = engines
        dep = parse("<?php $conf = $_GET['c'];", "dep.php")
        _, dep_env = reference.analyze_with_env(dep, "dep.php")
        main = parse("<?php mysql_query($conf);", "main.php")
        want, want_env = reference.analyze_with_env(
            main, "main.php", initial_env=dep_env)
        got, got_env = compiled.analyze_with_env(
            main, "main.php", initial_env=dep_env)
        assert got == want
        assert got_env == want_env
        assert want
