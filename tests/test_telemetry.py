"""Telemetry subsystem: tracing, metrics, stats, exporters, CLI flags.

Covers the observability contract of the scan pipeline:

* span nesting in-process and merging across worker processes;
* the metrics registry and its cross-process counter folding;
* JSON trace schema round-trip and Prometheus text export;
* the ``--stats`` footer (phase table summing to wall time);
* cache/report surfacing independent of telemetry;
* worker retry/crash logging with the failing file + exception class;
* the disabled path performing no telemetry work at all.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import pipeline
from repro.telemetry import (
    NULL_METRICS,
    NULL_TELEMETRY,
    NULL_TRACER,
    Metrics,
    Telemetry,
    Tracer,
    load_trace,
    metrics_to_text,
    trace_to_dict,
    validate_trace,
    write_trace,
)
from repro.telemetry.tracing import NULL_SPAN
from repro.tool.wap import Wape
from repro.analysis.options import ScanOptions


@pytest.fixture(scope="module")
def tool():
    return Wape()


# ---------------------------------------------------------------------------
# tracer units
# ---------------------------------------------------------------------------

class TestTracer:
    def test_spans_nest_on_the_open_stack(self):
        tracer = Tracer()
        with tracer.span("root", phase="run") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert root.parent_id is None
        assert all(s.duration >= 0 for s in tracer.spans)

    def test_attrs_and_phase_default(self):
        tracer = Tracer()
        with tracer.span("lex", file="a.php") as span:
            span.set(tokens=7)
        assert span.phase == "lex"
        assert span.attrs == {"file": "a.php", "tokens": 7}

    def test_children_and_descendants(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        children = {s.name for s in tracer.children_of(root.span_id)}
        descendants = {s.name for s in tracer.descendants_of(root.span_id)}
        assert children == {"a", "b"}
        assert descendants == {"a", "a1", "b"}

    def test_drain_and_merge_remap_ids_and_stamp_worker(self):
        worker = Tracer()
        with worker.span("chunk"):
            with worker.span("file"):
                pass
        records = worker.drain(worker=4321)
        assert worker.spans == []
        assert all(r["worker"] == 4321 for r in records)

        parent = Tracer()
        with parent.span("scan") as scan:
            parent.merge(records, parent_id=parent.current_id)
        names = {s.name: s for s in parent.spans}
        assert names["chunk"].parent_id == scan.span_id
        assert names["file"].parent_id == names["chunk"].span_id
        assert len({s.span_id for s in parent.spans}) == len(parent.spans)

    def test_merge_two_workers_with_colliding_ids(self):
        records = []
        for pid in (111, 222):
            w = Tracer()
            with w.span("chunk"):
                pass
            records.append(w.drain(worker=pid))
        parent = Tracer()
        with parent.span("scan"):
            for batch in records:
                parent.merge(batch, parent_id=parent.current_id)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids)) == 3


# ---------------------------------------------------------------------------
# metrics units
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_instruments_create_on_demand_and_accumulate(self):
        metrics = Metrics()
        metrics.counter("files").inc()
        metrics.counter("files").inc(2)
        metrics.gauge("rate").set(1.5)
        for value in (0.1, 0.2, 0.3):
            metrics.histogram("lat").observe(value)
        snap = metrics.snapshot()
        assert snap["counters"]["files"] == 3
        assert snap["gauges"]["rate"] == 1.5
        assert snap["histograms"]["lat"]["count"] == 3
        assert snap["histograms"]["lat"]["max"] == 0.3

    def test_drain_and_merge_counters(self):
        worker = Metrics()
        worker.counter("files").inc(5)
        worker.counter("zero")  # zero-valued: not shipped
        shipped = worker.drain_counters()
        assert shipped == {"files": 5}
        assert worker.counters == {}

        parent = Metrics()
        parent.counter("files").inc(1)
        parent.merge_counters(shipped)
        parent.merge_counters(None)  # disabled workers ship None
        assert parent.counter("files").value == 6

    def test_prometheus_text_format(self):
        metrics = Metrics()
        metrics.counter("files_scanned").inc(7)
        metrics.gauge("loc_per_second").set(1234.5)
        metrics.histogram("lat").observe(0.25)
        text = metrics_to_text(metrics)
        assert "# TYPE wape_files_scanned counter" in text
        assert "wape_files_scanned 7" in text
        assert "wape_loc_per_second 1234.5" in text
        assert 'wape_lat{quantile="0.5"} 0.25' in text
        assert "wape_lat_count 1" in text


# ---------------------------------------------------------------------------
# pipeline integration: spans through a real scan
# ---------------------------------------------------------------------------

def _write_app(tmp_path, n_files=3):
    for i in range(n_files):
        (tmp_path / f"f{i:03}.php").write_text(
            f"<?php $x{i} = $_GET['q{i}']; mysql_query($x{i});")


class TestScanTracing:
    def test_single_process_scan_produces_nested_file_spans(
            self, tool, tmp_path):
        _write_app(tmp_path)
        telemetry = Telemetry()
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1, telemetry=telemetry))
        tracer = telemetry.tracer
        root = next(s for s in tracer.spans if s.parent_id is None)
        assert root.name == "analyze_tree"
        top = {s.name for s in tracer.children_of(root.span_id)}
        assert {"discover", "scan", "predict"} <= top
        by_name = {}
        for span in tracer.descendants_of(root.span_id):
            by_name.setdefault(span.name, []).append(span)
        assert len(by_name["file"]) == 3
        for stage in ("lex", "parse", "taint"):
            assert len(by_name[stage]) == 3
        # per-file stage spans nest under their file span
        file_ids = {s.span_id for s in by_name["file"]}
        assert all(s.parent_id in file_ids for s in by_name["lex"])
        assert report.stats is not None
        assert report.stats.candidates == 3

    @pytest.mark.slow
    def test_parallel_scan_merges_worker_spans(self, tool, tmp_path):
        # enough tiny files that both workers get chunks with certainty
        _write_app(tmp_path, n_files=48)
        telemetry = Telemetry()
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=2, telemetry=telemetry))
        tracer = telemetry.tracer
        root = next(s for s in tracer.spans if s.parent_id is None)
        scoped = tracer.descendants_of(root.span_id)
        chunks = [s for s in scoped if s.name == "chunk"]
        files = [s for s in scoped if s.name == "file"]
        workers = {s.worker for s in scoped if s.worker is not None}
        assert len(files) == 48
        assert chunks and all(c.worker is not None for c in chunks)
        assert len(workers) >= 2
        assert report.stats.workers == len(workers)
        # worker file spans are re-parented under their chunk spans
        chunk_ids = {c.span_id for c in chunks}
        assert all(f.parent_id in chunk_ids for f in files)

    def test_stats_phase_table_sums_to_wall_time(self, tool, tmp_path):
        _write_app(tmp_path)
        telemetry = Telemetry()
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1, telemetry=telemetry))
        stats = report.stats
        total = sum(seconds for _name, seconds in stats.wall_phases)
        assert stats.total_seconds > 0
        assert abs(total - stats.total_seconds) \
            <= 0.10 * stats.total_seconds
        assert stats.wall_phases[-1][0] == "other"
        footer = report.render_stats()
        assert "phase breakdown (wall)" in footer
        assert "discover" in footer and "predict" in footer

    def test_trace_json_round_trip(self, tool, tmp_path):
        _write_app(tmp_path)
        telemetry = Telemetry()
        tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1, telemetry=telemetry))
        out = tmp_path / "trace.json"
        write_trace(str(out), telemetry.tracer, tool=tool.version,
                    target=str(tmp_path))
        data = load_trace(str(out))  # validates the schema
        assert data["tool"] == tool.version
        assert len(data["spans"]) == len(telemetry.tracer.spans)

    def test_validate_trace_rejects_malformed(self):
        good = trace_to_dict(Tracer())
        with pytest.raises(ValueError):
            validate_trace({**good, "trace_format": 99})
        with pytest.raises(ValueError):
            validate_trace({**good, "spans": [{"id": 1}]})
        dangling = {**good, "spans": [
            {"id": 1, "parent": 7, "name": "x", "phase": "x",
             "start": 0.0, "duration": 0.1}]}
        with pytest.raises(ValueError):
            validate_trace(dangling)

    def test_metrics_counters_from_scan(self, tool, tmp_path):
        _write_app(tmp_path)
        # sink + source markers keep bad.php past the prefilter so its
        # parse error still shows in the counters
        (tmp_path / "bad.php").write_text("<?php echo $_GET if ( { {{")
        telemetry = Telemetry()
        tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1, telemetry=telemetry))
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["files_scanned"] == 4
        assert counters["parse_errors"] == 1
        assert counters["candidates.sqli"] == 3


# ---------------------------------------------------------------------------
# satellites: cache surfacing, parse errors, worker fault logging
# ---------------------------------------------------------------------------

class TestScanHealth:
    def test_cache_counts_surface_without_telemetry(self, tool, tmp_path):
        _write_app(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1, cache_dir=str(cache_dir)))
        warm = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1, cache_dir=str(cache_dir)))
        assert cold.cache is not None and cold.stats is None
        assert (cold.cache.hits, cold.cache.misses) == (0, 3)
        assert cold.cache.puts == 3
        assert (warm.cache.hits, warm.cache.misses) == (3, 0)
        assert warm.cache.hit_rate == 1.0
        assert warm.to_dict()["cache"]["hits"] == 3
        assert "3 hits" in warm.render_stats()

    def test_corrupt_cache_entry_is_evicted_and_counted(self, tmp_path):
        cache = pipeline.ResultCache(str(tmp_path), "f" * 64)
        digest = pipeline.ResultCache.content_hash(b"<?php")
        entry = cache._entry_path(digest)
        with open(entry, "wb") as f:
            f.write(b"not a pickle")
        assert cache.get(digest, "a.php") is None
        assert (cache.misses, cache.evictions) == (1, 1)
        import os
        assert not os.path.exists(entry)
        # the evicted entry stays evicted: next probe is a plain miss
        assert cache.get(digest, "a.php") is None
        assert (cache.misses, cache.evictions) == (2, 1)

    def test_parse_error_diagnosable_from_json(self, tool, tmp_path):
        (tmp_path / "bad.php").write_text("<?php echo $_GET if ( { {{")
        (tmp_path / "ok.php").write_text("<?php echo 1;")
        telemetry = Telemetry()
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1, telemetry=telemetry))
        doc = report.to_dict()
        assert doc["summary"]["parse_errors"] == 1
        errored = [f for f in doc["files"] if f["parse_error"]]
        assert len(errored) == 1
        assert "bad.php" in errored[0]["path"]
        first = doc["stats"]["first_parse_error"]
        assert "bad.php" in first["file"] and first["error"]

    @pytest.mark.slow
    def test_worker_crash_logged_with_file_and_cause(
            self, tool, tmp_path, monkeypatch):
        (tmp_path / "a.php").write_text("<?php mysql_query($_GET['q']);")
        (tmp_path / "kill.php").write_text("<?php /* DIE-NOW */ echo $_GET['k'];")
        (tmp_path / "z.php").write_text("<?php echo $_GET['x'];")
        monkeypatch.setenv(pipeline._CRASH_ENV, "DIE-NOW")
        telemetry = Telemetry()
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=2, telemetry=telemetry))
        stats = report.stats
        assert any("kill.php" in path for path, _ in stats.worker_retries)
        assert any("kill.php" in path and cause == "BrokenProcessPool"
                   for path, cause in stats.worker_crashes)
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["worker_crashes"] >= 1
        assert counters["worker_retries"] >= 1
        retry_spans = [s for s in telemetry.tracer.spans
                       if s.name == "isolated_retry"
                       and "kill.php" in s.attrs.get("file", "")]
        assert retry_spans and retry_spans[0].attrs.get("crashed")
        footer = stats.render()
        assert "worker faults" in footer and "kill.php" in footer


# ---------------------------------------------------------------------------
# disabled path: no telemetry work at all
# ---------------------------------------------------------------------------

class TestDisabledOverhead:
    def test_null_singletons_are_shared_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.tracer is NULL_TRACER
        assert NULL_TELEMETRY.metrics is NULL_METRICS
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert NULL_TRACER.span("x").__enter__() is NULL_SPAN
        inst = NULL_METRICS.counter("a")
        assert inst is NULL_METRICS.histogram("b")
        inst.inc()
        inst.observe(1.0)
        assert NULL_METRICS.snapshot()["counters"] == {}
        assert NULL_TRACER.spans == []

    def test_disabled_scan_records_nothing(self, tool, tmp_path):
        _write_app(tmp_path)
        report = tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1))
        assert report.stats is None
        assert NULL_TRACER.spans == []
        assert NULL_METRICS.snapshot()["counters"] == {}

    def test_disabled_scan_makes_no_tracer_calls(self, tool, tmp_path,
                                                 monkeypatch):
        # the per-file hot path must not even call span() when disabled:
        # detect_file/detect_source guard on telemetry.enabled
        _write_app(tmp_path)
        calls = []
        original = NULL_TRACER.span

        def counting_span(name, phase="", **attrs):
            calls.append(name)
            return original(name, phase, **attrs)

        monkeypatch.setattr(NULL_TRACER, "span", counting_span,
                            raising=False)
        tool.analyze_tree(str(tmp_path), ScanOptions(jobs=1))
        monkeypatch.undo()
        # constant per-scan spans may pass through the null tracer, but
        # nothing proportional to the file count may
        per_file = [c for c in calls
                    if c in ("file", "lex", "parse", "taint", "split",
                             "predict_file", "cache_get", "cache_put")]
        assert per_file == []


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestCliTelemetry:
    def test_stats_trace_and_metrics_flags(self, tmp_path):
        import subprocess
        import sys
        app = tmp_path / "app"
        app.mkdir()
        (app / "a.php").write_text(
            "<?php echo $_GET['x']; mysql_query($_GET['q']);")
        trace_out = tmp_path / "t.json"
        metrics_out = tmp_path / "m.prom"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "scan", "--jobs", "1", "--no-cache",
             "--stats", "--trace-out", str(trace_out),
             "--metrics-out", str(metrics_out), str(app)],
            capture_output=True, text=True)
        assert proc.returncode == 1  # vulnerabilities found
        assert "== scan statistics" in proc.stdout
        assert "phase breakdown (wall)" in proc.stdout
        data = load_trace(str(trace_out))
        assert any(s["name"] == "analyze_tree" for s in data["spans"])
        text = metrics_out.read_text()
        assert "wape_files_scanned 1" in text

    def test_json_report_embeds_stats(self, tmp_path):
        import subprocess
        import sys
        app = tmp_path / "app"
        app.mkdir()
        (app / "a.php").write_text("<?php echo $_GET['x'];")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "scan", "--jobs", "1", "--no-cache",
             "--stats", "--json", str(app)],
            capture_output=True, text=True)
        doc = json.loads(proc.stdout)
        assert doc["stats"]["files"] == 1
        assert doc["stats"]["wall_phases"][-1]["phase"] == "other"
