"""`wape watch` and the `wape scan --baseline/--fail-on-new` CI gate."""

import json
import os
import shutil

import pytest

from repro.analysis.options import ScanOptions
from repro.api import Scanner
from repro.obs import RunLedger
from repro.tool.cli import main as scan_main
from repro.tool.watch import Watcher
from repro.tool.wap import Wape

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")

INJECTED_SINK = "\n<?php echo $_GET['watch_injected']; ?>\n"


@pytest.fixture(scope="module")
def tool():
    return Wape()


@pytest.fixture()
def app(tmp_path):
    root = tmp_path / "demo_app"
    shutil.copytree(DEMO_APP, root)
    return str(root)


def make_watcher(tool, app, ledger=None):
    scanner = Scanner(tool, ScanOptions(jobs=1))
    return Watcher(scanner, app, interval=0.01, debounce=0.0,
                   ledger=ledger)


class TestWatcher:
    def test_poll_before_start_is_an_error(self, tool, app):
        with pytest.raises(RuntimeError, match="start"):
            make_watcher(tool, app).poll()

    def test_unchanged_tree_yields_no_cycle(self, tool, app):
        watcher = make_watcher(tool, app)
        watcher.start()
        assert watcher.poll(sleep=lambda _s: None) is None
        assert watcher.cycles == 0

    def test_edit_then_revert_reports_new_then_fixed(self, tool, app):
        """The acceptance loop: inject a tainted sink (1 new), revert
        it (1 fixed) — both cycles warm, re-analyzing only the edit."""
        watcher = make_watcher(tool, app)
        first = watcher.start()
        total = len(first.report.outcomes)
        target = os.path.join(app, "contact.php")
        with open(target, encoding="utf-8") as f:
            original = f.read()

        with open(target, "a", encoding="utf-8") as f:
            f.write(INJECTED_SINK)
        cycle = watcher.poll(sleep=lambda _s: None)
        assert cycle is not None and cycle.cycle == 1
        assert len(cycle.delta.new) == 1
        assert not cycle.delta.fixed
        assert len(cycle.delta.unchanged) == total
        assert cycle.delta.new[0]["file"] == "contact.php"
        assert cycle.delta.new[0]["verdict"] == "real"
        assert cycle.result.incremental
        assert cycle.result.analyzed_files == 1
        injected = cycle.delta.new[0]["fingerprint"]

        with open(target, "w", encoding="utf-8") as f:
            f.write(original)
        cycle = watcher.poll(sleep=lambda _s: None)
        assert cycle is not None and cycle.cycle == 2
        assert not cycle.delta.new
        assert [f["fingerprint"] for f in cycle.delta.fixed] == [injected]
        assert len(cycle.delta.unchanged) == total
        assert watcher.poll(sleep=lambda _s: None) is None

    def test_debounce_waits_for_the_tree_to_settle(self, tool, app):
        """A write landing during debounce restarts the quiet period —
        the rescan must see the final content, not the mid-burst one."""
        watcher = make_watcher(tool, app)
        watcher.start()
        target = os.path.join(app, "search.php")
        burst = iter([True, False])

        def keep_writing(_seconds):
            if next(burst, False):
                with open(target, "a", encoding="utf-8") as f:
                    f.write(INJECTED_SINK)

        with open(target, "a", encoding="utf-8") as f:
            f.write("\n<?php // first write of the burst ?>\n")
        cycle = watcher.poll(sleep=keep_writing)
        assert cycle is not None
        assert len(cycle.delta.new) == 1  # the mid-burst write was seen

    def test_cycles_land_in_the_ledger_as_watch_mode(self, tool, app,
                                                     tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        watcher = make_watcher(tool, app, ledger=ledger)
        watcher.start()
        with open(os.path.join(app, "contact.php"), "a",
                  encoding="utf-8") as f:
            f.write(INJECTED_SINK)
        watcher.poll(sleep=lambda _s: None)
        records = ledger.load()
        assert len(records) == 1
        record = records[0]
        assert record["mode"] == "watch"
        assert record["watch"]["cycle"] == 1
        assert record["watch"]["new"] == 1
        assert record["watch"]["analyzed_files"] == 1
        assert record["watch"]["reused_files"] > 0


class TestWatchCli:
    def test_not_a_directory(self, tmp_path, capsys):
        from repro.tool.watch import main as watch_main
        assert watch_main([str(tmp_path / "missing")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_watch_subcommand_is_dispatched(self):
        from repro.tool.main import COMMANDS
        assert "watch" in COMMANDS


class TestBaselineGate:
    def write_baseline(self, tool, app, path):
        data = tool.analyze_tree(app, ScanOptions(jobs=1)).to_dict()
        with open(path, "w", encoding="utf-8") as f:
            json.dump(data, f)
        return data

    def test_unchanged_tree_passes_the_gate(self, tool, app, tmp_path,
                                            capsys):
        baseline = str(tmp_path / "baseline.json")
        self.write_baseline(tool, app, baseline)
        code = scan_main(["--quiet", "--no-cache", "--baseline", baseline,
                          "--fail-on-new", app])
        out = capsys.readouterr().out
        assert code == 0
        assert "+0 new" in out

    def test_new_finding_fails_the_gate(self, tool, app, tmp_path,
                                        capsys):
        baseline = str(tmp_path / "baseline.json")
        self.write_baseline(tool, app, baseline)
        with open(os.path.join(app, "contact.php"), "a",
                  encoding="utf-8") as f:
            f.write(INJECTED_SINK)
        code = scan_main(["--quiet", "--no-cache", "--baseline", baseline,
                          "--fail-on-new", app])
        out = capsys.readouterr().out
        assert code == 1
        assert "+1 new" in out

    def test_fixed_findings_do_not_fail_the_gate(self, tool, app,
                                                 tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        self.write_baseline(tool, app, baseline)
        os.unlink(os.path.join(app, "run.php"))
        code = scan_main(["--quiet", "--no-cache", "--baseline", baseline,
                          "--fail-on-new", app])
        out = capsys.readouterr().out
        assert code == 0
        assert "-1 fixed" in out

    def test_json_report_carries_the_delta_block(self, tool, app,
                                                 tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        self.write_baseline(tool, app, baseline)
        code = scan_main(["--json", "--no-cache", "--baseline", baseline,
                          "--fail-on-new", app])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["delta"]["counts"]["new"] == 0
        assert data["delta"]["counts"]["unchanged"] \
            == sum(len(e["findings"]) for e in data["files"])

    def test_fail_on_new_requires_a_baseline(self, app, capsys):
        assert scan_main(["--fail-on-new", app]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_baseline_requires_exactly_one_target(self, tool, app,
                                                  tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        self.write_baseline(tool, app, baseline)
        assert scan_main(["--baseline", baseline, app, app]) == 2
        assert "one target" in capsys.readouterr().err

    def test_malformed_baseline_is_a_usage_error(self, app, tmp_path,
                                                 capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert scan_main(["--baseline", str(bad), app]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_missing_baseline_file_is_a_usage_error(self, app, tmp_path,
                                                    capsys):
        missing = str(tmp_path / "absent.json")
        assert scan_main(["--baseline", missing, app]) == 2
        assert "baseline" in capsys.readouterr().err
