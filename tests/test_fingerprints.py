"""v3 stable finding fingerprints and the findings delta layer."""

import json
import os
import shutil

import pytest

from repro.analysis.options import ScanOptions
from repro.api import FindingsDelta, diff_reports
from repro.tool.report import (
    FINGERPRINT_ALGORITHM,
    SCHEMA_VERSION,
    finding_fingerprint_material,
    normalize_finding_path,
    report_fingerprints,
    upgrade_report_dict,
)
from repro.tool.wap import Wape

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")


@pytest.fixture(scope="module")
def tool():
    return Wape()


@pytest.fixture()
def app(tmp_path):
    root = tmp_path / "demo_app"
    shutil.copytree(DEMO_APP, root)
    return str(root)


def scan_dict(tool, root):
    return tool.analyze_tree(root, ScanOptions(jobs=1)).to_dict()


def by_fingerprint(data):
    """fingerprint -> (relative file, finding dict)."""
    out = {}
    for entry in data["files"]:
        rel = normalize_finding_path(entry["path"], data["target"])
        for finding in entry["findings"]:
            out[finding["fingerprint"]] = (rel, finding)
    return out


class TestNormalizePath:
    def test_inside_target_is_relativized(self):
        assert normalize_finding_path("/a/b/app/sub/f.php",
                                      "/a/b/app") == "sub/f.php"

    def test_posix_separators(self):
        rel = normalize_finding_path(
            os.path.join("/t", "x", "y.php"), "/t")
        assert rel == "x/y.php"

    def test_outside_target_falls_back_to_basename(self):
        assert normalize_finding_path("/elsewhere/f.php",
                                      "/a/b/app") == "f.php"

    def test_non_path_target_falls_back_to_basename(self):
        assert normalize_finding_path("f.php", "<source>") == "f.php"


class TestFingerprintStability:
    def test_every_finding_is_fingerprinted(self, tool, app):
        data = scan_dict(tool, app)
        fingerprints = report_fingerprints(data)
        assert fingerprints
        assert all(isinstance(fp, str) and len(fp) == 20
                   for fp in fingerprints)
        assert len(set(fingerprints)) == len(fingerprints)

    def test_rescans_agree(self, tool, app):
        assert report_fingerprints(scan_dict(tool, app)) \
            == report_fingerprints(scan_dict(tool, app))

    def test_root_relocation_keeps_identities(self, tool, app, tmp_path):
        """The CI case: same tree, different checkout location."""
        moved = str(tmp_path / "elsewhere" / "checkout")
        shutil.copytree(app, moved)
        assert set(report_fingerprints(scan_dict(tool, app))) \
            == set(report_fingerprints(scan_dict(tool, moved)))

    def test_line_shift_keeps_identities(self, tool, app):
        before = set(report_fingerprints(scan_dict(tool, app)))
        target = os.path.join(app, "search.php")
        with open(target, encoding="utf-8") as f:
            content = f.read()
        with open(target, "w", encoding="utf-8") as f:
            f.write(content.replace("<?php", "<?php\n// pad\n// pad\n", 1))
        after = scan_dict(tool, app)
        assert set(report_fingerprints(after)) == before
        # the finding genuinely moved: its line changed, identity did not
        search = [f for rel, f in by_fingerprint(after).values()
                  if rel == "search.php"]
        assert search and all(f["sink_line"] > 4 for f in search)

    def test_dependency_edit_keeps_dependent_identities(self, tool, app):
        """feed.php's findings flow through includes/input.php: touching
        the dependency (shifting its lines) must not re-identify them."""
        before = by_fingerprint(scan_dict(tool, app))
        dep = os.path.join(app, "includes", "input.php")
        with open(dep, encoding="utf-8") as f:
            content = f.read()
        with open(dep, "w", encoding="utf-8") as f:
            f.write(content.replace("<?php", "<?php\n// pad\n", 1))
        after = by_fingerprint(scan_dict(tool, app))
        assert set(after) == set(before)
        assert any(rel == "feed.php" for rel, _ in after.values())

    def test_new_sink_changes_the_set(self, tool, app):
        before = set(report_fingerprints(scan_dict(tool, app)))
        with open(os.path.join(app, "contact.php"), "a",
                  encoding="utf-8") as f:
            f.write("\n<?php echo $_GET['injected']; ?>\n")
        after = set(report_fingerprints(scan_dict(tool, app)))
        assert before < after
        assert len(after - before) == 1

    def test_identical_flows_get_distinct_ordinals(self, tool, tmp_path):
        """Two textually identical flows in one file must not collide —
        and must get the same pair of identities on every scan."""
        root = tmp_path / "twins"
        root.mkdir()
        (root / "t.php").write_text(
            "<?php\necho $_GET['x'];\necho $_GET['x'];\n")
        first = report_fingerprints(scan_dict(tool, str(root)))
        assert len(first) == 2
        assert len(set(first)) == 2
        assert report_fingerprints(scan_dict(tool, str(root))) == first

    def test_material_is_line_free(self):
        finding = {"class": "xss", "sink": "echo",
                   "entry_point": "$_GET['x']", "sink_line": 4,
                   "path": [{"kind": "source", "detail": "$_GET['x']",
                             "line": 3},
                            {"kind": "sink", "detail": "echo", "line": 4}]}
        material = finding_fingerprint_material(finding, "/t/a.php", "/t")
        shifted = dict(finding, sink_line=90)
        shifted["path"] = [dict(s, line=s["line"] + 86)
                           for s in finding["path"]]
        assert finding_fingerprint_material(shifted, "/t/a.php", "/t") \
            == material
        assert material.startswith(FINGERPRINT_ALGORITHM)


class TestUpgradeToV3:
    def make_v2(self):
        return {
            "schema_version": 2,
            "tool": "WAPe",
            "target": "app/",
            "service": None,
            "cache": None,
            "stats": None,
            "summary": {"files": 1, "lines": 4, "seconds": 0.0,
                        "candidates": 1, "real_vulnerabilities": 1,
                        "predicted_false_positives": 0, "parse_errors": 0,
                        "parse_warnings": 0, "recovered_statements": 0,
                        "resolved_includes": 0, "unresolved_includes": 0,
                        "by_class": {"XSS": 1}},
            "files": [{"path": "app/a.php", "lines": 4, "seconds": 0.0,
                       "parse_error": None, "parse_warning": None,
                       "recovered_statements": 0, "resolved_includes": 0,
                       "unresolved_includes": 0,
                       "findings": [{"class": "xss", "group": "XSS",
                                     "sink": "echo", "sink_line": 4,
                                     "entry_point": "$_GET['q']",
                                     "entry_line": 3, "verdict": "real",
                                     "votes": {}, "symptoms": [],
                                     "path": []}]}],
        }

    def test_v2_upgrade_stamps_fingerprints(self):
        out = upgrade_report_dict(self.make_v2())
        assert out["schema_version"] == SCHEMA_VERSION
        fingerprints = report_fingerprints(out)
        assert fingerprints and all(len(fp) == 20 for fp in fingerprints)

    def test_v2_upgrade_is_deterministic(self):
        assert upgrade_report_dict(self.make_v2()) \
            == upgrade_report_dict(self.make_v2())

    def test_v2_upgrade_does_not_mutate_input(self):
        original = self.make_v2()
        snapshot = json.loads(json.dumps(original))
        upgrade_report_dict(original)
        assert original == snapshot

    def test_v3_round_trips_byte_identically(self, tool, app):
        data = scan_dict(tool, app)
        assert json.dumps(upgrade_report_dict(data), sort_keys=True) \
            == json.dumps(data, sort_keys=True)


class TestFindingsDelta:
    def test_no_change_is_all_unchanged(self, tool, app):
        data = scan_dict(tool, app)
        delta = diff_reports(data, data)
        assert not delta.changed
        assert not delta.new and not delta.fixed
        assert len(delta.unchanged) == len(report_fingerprints(data))

    def test_new_and_fixed_are_symmetric(self, tool, app):
        baseline = scan_dict(tool, app)
        with open(os.path.join(app, "contact.php"), "a",
                  encoding="utf-8") as f:
            f.write("\n<?php echo $_GET['fresh']; ?>\n")
        current = scan_dict(tool, app)
        forward = diff_reports(current, baseline)
        assert len(forward.new) == 1
        assert not forward.fixed
        assert forward.new[0]["file"] == "contact.php"
        assert forward.new[0]["verdict"] == "real"
        backward = diff_reports(baseline, current)
        assert not backward.new
        assert [f["fingerprint"] for f in backward.fixed] \
            == [f["fingerprint"] for f in forward.new]

    def test_lists_are_sorted_by_fingerprint(self, tool, app):
        delta = diff_reports(scan_dict(tool, app), {
            "tool": "WAPe", "target": "x", "summary": {}, "files": []})
        fingerprints = [f["fingerprint"] for f in delta.new]
        assert fingerprints == sorted(fingerprints)

    def test_new_real_excludes_predicted_fps(self, tool, app):
        """login.php's finding is a predicted FP: it must not count as a
        gate-tripping new finding."""
        delta = diff_reports(scan_dict(tool, app), {
            "tool": "WAPe", "target": "x", "summary": {}, "files": []})
        verdicts = {f["verdict"] for f in delta.new}
        assert "false_positive" in verdicts
        assert all(f["verdict"] == "real" for f in delta.new_real)
        assert len(delta.new_real) < len(delta.new)

    def test_delta_diffs_across_checkout_locations(self, tool, app,
                                                   tmp_path):
        moved = str(tmp_path / "ci" / "workspace")
        shutil.copytree(app, moved)
        delta = diff_reports(scan_dict(tool, moved), scan_dict(tool, app))
        assert not delta.changed

    def test_round_trip_through_dict(self, tool, app):
        data = scan_dict(tool, app)
        delta = diff_reports(data, data)
        again = FindingsDelta.from_dict(delta.to_dict(), report=data)
        assert again == delta
        assert again.report is data

    def test_render_text_names_files_and_fingerprints(self, tool, app):
        delta = diff_reports(scan_dict(tool, app), {
            "tool": "WAPe", "target": "x", "summary": {}, "files": []})
        text = delta.render_text()
        assert "new" in text and "+" in text
        assert delta.new[0]["fingerprint"] in text

    def test_malformed_baseline_is_rejected(self, tool, app):
        from repro.exceptions import ReportSchemaError
        with pytest.raises(ReportSchemaError):
            diff_reports(scan_dict(tool, app), {"schema_version": 2})
