"""Deeper taint-engine coverage: scoping, containers, OO, odd constructs."""

import pytest

from repro.analysis import (
    Detector,
    DetectorConfig,
    SinkSpec,
    SINK_ECHO,
    generate_detector,
)

SQLI = generate_detector(
    "sqli", ["mysql_query:0"],
    sanitizers=["mysql_real_escape_string", "addslashes"])

XSS = Detector([DetectorConfig(
    class_id="xss",
    entry_points=frozenset({"_GET", "_POST", "_COOKIE", "_REQUEST"}),
    source_functions=frozenset({"mysql_fetch_assoc"}),
    sinks=(SinkSpec("", SINK_ECHO),),
    sanitizers=frozenset({"htmlentities"}),
)])


def sqli(body):
    return SQLI.detect_source("<?php " + body)


def xss(body):
    return XSS.detect_source("<?php " + body)


class TestContainers:
    def test_array_element_taints_whole_array(self):
        cands = sqli("$a = array(); $a['k'] = $_GET['v']; "
                     "mysql_query($a['other']);")
        assert len(cands) == 1

    def test_array_literal_with_tainted_value(self):
        cands = sqli("$a = array('x' => $_GET['v']); mysql_query($a);")
        assert len(cands) == 1

    def test_array_literal_with_tainted_key(self):
        cands = sqli("$a = array($_GET['k'] => 1); mysql_query($a);")
        assert len(cands) == 1

    def test_nested_array_taint(self):
        cands = sqli("$a = array('x' => array($_POST['y'])); "
                     "mysql_query($a);")
        assert len(cands) == 1

    def test_list_assign_spreads_taint(self):
        cands = sqli("list($a, $b) = explode(',', $_GET['csv']); "
                     "mysql_query($b);")
        assert len(cands) == 1

    def test_short_list_assign(self):
        cands = sqli("[$a, $b] = explode(',', $_GET['csv']); "
                     "mysql_query($a);")
        assert len(cands) == 1

    def test_foreach_key_taint(self):
        cands = sqli("foreach ($_POST as $k => $v) { mysql_query($k); }")
        assert len(cands) == 1

    def test_array_append_taint(self):
        cands = sqli("$rows = array(); $rows[] = $_GET['r']; "
                     "mysql_query($rows);")
        assert len(cands) == 1


class TestObjects:
    def test_property_write_read(self):
        cands = sqli("$o->q = $_GET['x']; mysql_query($o->q);")
        assert len(cands) == 1

    def test_this_property_flow(self):
        cands = sqli(
            "class C { function set() { $this->v = $_GET['x']; "
            "mysql_query($this->v); } }")
        assert len(cands) == 1

    def test_nested_property_chain(self):
        cands = sqli("$a->b->c = $_GET['x']; mysql_query($a->b->c);")
        assert len(cands) == 1

    def test_static_property_flow(self):
        cands = sqli("Conf::$dsn = $_GET['x']; mysql_query(Conf::$dsn);")
        assert len(cands) == 1

    def test_different_property_untainted(self):
        cands = sqli("$o->a = $_GET['x']; mysql_query($o->b);")
        assert cands == []

    def test_method_return_flow(self):
        cands = sqli(
            "class R { function get() { return $_GET['x']; } } "
            "$r = new R(); mysql_query($r->get());")
        assert len(cands) == 1

    def test_constructor_args_propagate(self):
        cands = sqli("$q = new Query($_GET['x']); mysql_query($q);")
        assert len(cands) == 1


class TestFunctionsDeep:
    def test_default_param_not_tainted(self):
        cands = sqli("function f($a, $b = 'safe') { mysql_query($b); } "
                     "f($_GET['x']);")
        assert cands == []

    def test_second_param_flow(self):
        cands = sqli("function f($a, $b) { mysql_query($b); } "
                     "f('safe', $_GET['x']);")
        assert len(cands) == 1
        assert cands[0].entry_point == "$_GET['x']"

    def test_multiple_returns_any_tainted(self):
        cands = sqli(
            "function pick($c, $v) { if ($c) { return 'safe'; } "
            "return $v; } mysql_query(pick(1, $_GET['x']));")
        assert len(cands) == 1

    def test_sanitizer_on_one_return_path_not_enough(self):
        # one return path sanitizes, the other does not -> still tainted
        cands = sqli(
            "function maybe($v) { if ($v) "
            "{ return mysql_real_escape_string($v); } return $v; } "
            "mysql_query(maybe($_GET['x']));")
        assert len(cands) == 1

    def test_both_paths_sanitized(self):
        cands = sqli(
            "function clean($v) { if ($v) "
            "{ return mysql_real_escape_string($v); } "
            "return addslashes($v); } "
            "mysql_query(clean($_GET['x']));")
        assert cands == []

    def test_closure_body_analyzed(self):
        cands = sqli("$f = function () { mysql_query($_GET['x']); };")
        assert len(cands) == 1

    def test_closure_use_captures_taint(self):
        cands = sqli("$t = $_GET['x']; "
                     "$f = function () use ($t) { mysql_query($t); };")
        assert len(cands) == 1

    def test_closure_without_use_does_not_capture(self):
        cands = sqli("$t = $_GET['x']; "
                     "$f = function () { mysql_query($t); };")
        assert cands == []

    def test_mutual_recursion_terminates(self):
        cands = sqli(
            "function a($v) { return b($v); } "
            "function b($v) { return a($v); } "
            "mysql_query(a($_GET['x']));")
        assert isinstance(cands, list)

    def test_variadic_param(self):
        cands = sqli("function f(...$args) { mysql_query($args); } "
                     "f($_GET['x']);")
        assert len(cands) == 1


class TestOddConstructs:
    def test_error_suppress_preserves_taint(self):
        assert len(sqli("@mysql_query($_GET['x']);")) == 1

    def test_heredoc_interpolation_flow(self):
        src = ("$v = $_GET['x'];\n$q = <<<EOT\nSELECT a WHERE x = $v\n"
               "EOT;\nmysql_query($q);")
        assert len(sqli(src)) == 1

    def test_variable_variable_untracked(self):
        # conservative: $$name flows are dropped, not crashed on
        cands = sqli("$name = 'q'; $$name = $_GET['x']; mysql_query($q);")
        assert cands == []

    def test_dynamic_call_propagates_args(self):
        cands = sqli("$f = 'helper'; $v = $f($_GET['x']); mysql_query($v);")
        assert len(cands) == 1

    def test_clone_preserves_taint(self):
        cands = sqli("$a = $_GET['x']; $b = clone $a; mysql_query($b);")
        assert len(cands) == 1

    def test_stored_xss_via_db_read(self):
        cands = xss("$row = mysql_fetch_assoc($res); "
                    "echo $row['comment'];")
        assert len(cands) == 1
        assert cands[0].entry_point == "mysql_fetch_assoc()"

    def test_global_statement_isolated(self):
        # globals inside a function are not resolved (per-file soundness
        # choice); no crash, no report
        cands = sqli("function f() { global $dirty; mysql_query($dirty); }")
        assert cands == []

    def test_compound_concat_into_array_slot(self):
        cands = sqli("$q['sql'] = 'SELECT '; $q['sql'] .= $_GET['c']; "
                     "mysql_query($q['sql']);")
        assert len(cands) == 1

    def test_deeply_nested_expression(self):
        expr = "$_GET['x']"
        for _ in range(30):
            expr = f"trim({expr})"
        assert len(sqli(f"mysql_query({expr});")) == 1

    def test_switch_fallthrough_taint(self):
        cands = sqli("switch ($m) { case 1: $q = $_GET['a']; "
                     "case 2: mysql_query($q); }")
        assert len(cands) == 1

    def test_do_while_body_taint(self):
        cands = sqli("do { $q = $_GET['a']; } while (false); "
                     "mysql_query($q);")
        assert len(cands) == 1

    def test_elseif_branch_taint(self):
        cands = sqli("if ($a) { $q = 's'; } elseif ($b) "
                     "{ $q = $_GET['x']; } mysql_query($q);")
        assert len(cands) == 1

    def test_exit_in_else_does_not_guard(self):
        cands = sqli("if ($ok) { $q = $_GET['x']; } else { exit; } "
                     "mysql_query($q);")
        assert len(cands) == 1
        assert "exit" not in cands[0].guards


class TestDeterminism:
    SRC = ("$a = $_GET['a']; $b = trim($_POST['b']); "
           "if (is_numeric($a)) { mysql_query('x' . $a); } "
           "mysql_query(\"SELECT f FROM t WHERE b = '\" . $b . \"'\");")

    def test_repeated_analysis_identical(self):
        first = sqli(self.SRC)
        for _ in range(3):
            again = sqli(self.SRC)
            assert [(c.key(), c.path) for c in again] == \
                [(c.key(), c.path) for c in first]

    def test_fresh_detector_identical(self):
        det2 = generate_detector(
            "sqli", ["mysql_query:0"],
            sanitizers=["mysql_real_escape_string", "addslashes"])
        assert [c.key() for c in det2.detect_source("<?php " + self.SRC)] \
            == [c.key() for c in sqli(self.SRC)]


class TestDestructuring:
    def test_foreach_list_destructuring_taints_targets(self):
        cands = sqli("foreach ($_POST as list($a, $b)) "
                     "{ mysql_query($b); }")
        assert len(cands) == 1

    def test_foreach_short_list_destructuring(self):
        cands = sqli("foreach ($_GET as [$k, $v]) { mysql_query($k); }")
        assert len(cands) == 1
