"""Unit tests for the from-scratch classifiers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ClassifierError
from repro.mining.classifiers import (
    BernoulliNaiveBayes,
    DecisionTree,
    KNearestNeighbors,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    RandomTree,
)

ALL = [LogisticRegression, LinearSVM, DecisionTree, RandomTree,
       RandomForest, BernoulliNaiveBayes, KNearestNeighbors]


def _separable(n=60, d=8, seed=3):
    """Linearly separable binary data."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (X @ w > 0).astype(np.int64)
    return X, y


def _binary_patterns(n=80, seed=5):
    """Binary feature data: class 1 iff the first 2 bits dominate."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, 6)).astype(np.float64)
    y = ((X[:, 0] + X[:, 1]) >= 1).astype(np.int64)
    return X, y


@pytest.mark.parametrize("cls", ALL)
class TestCommonBehaviour:
    def test_fit_predict_training_accuracy(self, cls):
        X, y = _binary_patterns()
        clf = cls().fit(X, y)
        acc = (clf.predict(X) == y).mean()
        assert acc >= 0.9, f"{cls.__name__} training acc {acc}"

    def test_predict_before_fit_raises(self, cls):
        with pytest.raises(ClassifierError):
            cls().predict(np.zeros((1, 4)))

    def test_bad_label_raises(self, cls):
        X = np.zeros((4, 3))
        with pytest.raises(ClassifierError):
            cls().fit(X, np.array([0, 1, 2, 1]))

    def test_shape_mismatch_raises(self, cls):
        X, y = _binary_patterns()
        clf = cls().fit(X, y)
        with pytest.raises(ClassifierError):
            clf.predict(np.zeros((2, X.shape[1] + 1)))

    def test_predictions_are_binary(self, cls):
        X, y = _binary_patterns()
        pred = cls().fit(X, y).predict(X)
        assert set(np.unique(pred).tolist()) <= {0, 1}

    def test_deterministic(self, cls):
        X, y = _binary_patterns()
        p1 = cls().fit(X, y).predict(X)
        p2 = cls().fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_predict_one(self, cls):
        X, y = _binary_patterns()
        clf = cls().fit(X, y)
        assert clf.predict_one(X[0]) in (0, 1)

    def test_single_class_training(self, cls):
        X = np.ones((6, 3))
        y = np.ones(6, dtype=np.int64)
        clf = cls().fit(X, y)
        assert clf.predict(X).tolist() == [1] * 6


class TestLogisticRegression:
    def test_separable_high_accuracy(self):
        X, y = _separable()
        clf = LogisticRegression().fit(X, y)
        assert (clf.predict(X) == y).mean() >= 0.95

    def test_proba_in_unit_interval(self):
        X, y = _separable()
        p = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_proba_monotone_with_labels(self):
        X, y = _separable()
        p = LogisticRegression().fit(X, y).predict_proba(X)
        assert p[y == 1].mean() > p[y == 0].mean()


class TestSVM:
    def test_separable_high_accuracy(self):
        X, y = _separable()
        clf = LinearSVM().fit(X, y)
        assert (clf.predict(X) == y).mean() >= 0.95

    def test_decision_sign_matches_predict(self):
        X, y = _separable()
        clf = LinearSVM().fit(X, y)
        scores = clf.decision_function(X)
        assert np.array_equal((scores >= 0).astype(int), clf.predict(X))


class TestTrees:
    def test_pure_leaf_fit(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        clf = DecisionTree().fit(X, y)
        assert clf.predict(X).tolist() == [0, 1]

    def test_max_depth_limits(self):
        X, y = _binary_patterns()
        shallow = DecisionTree(max_depth=1).fit(X, y)
        assert shallow.depth() <= 1

    def test_xor_needs_depth_two(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        clf = DecisionTree().fit(X, y)
        assert clf.predict(X).tolist() == [0, 1, 1, 0]

    def test_random_tree_uses_feature_subsets(self):
        X, y = _binary_patterns()
        clf = RandomTree().fit(X, y)
        assert clf.max_features is not None
        assert clf.max_features < X.shape[1]

    def test_forest_votes(self):
        X, y = _binary_patterns()
        clf = RandomForest(n_trees=9).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_forest_better_or_equal_single_tree_generalization(self):
        # forest should be at least decent on held-out data
        X, y = _binary_patterns(n=120)
        clf = RandomForest(n_trees=15, seed=1).fit(X[:80], y[:80])
        assert (clf.predict(X[80:]) == y[80:]).mean() >= 0.8


class TestKNN:
    def test_k1_memorizes(self):
        X, y = _binary_patterns()
        clf = KNearestNeighbors(k=1).fit(X, y)
        # with duplicate rows of conflicting labels this can differ;
        # use unique rows
        Xu, idx = np.unique(X, axis=0, return_index=True)
        assert (clf.predict(Xu) == y[idx]).mean() >= 0.9

    def test_invalid_k(self):
        with pytest.raises(ClassifierError):
            KNearestNeighbors(k=0)


class TestProperties:
    @given(st.integers(min_value=10, max_value=40),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_any_binary_data_fits(self, n, d, seed):
        """Every classifier handles arbitrary binary data without error."""
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 2, size=(n, d)).astype(np.float64)
        y = rng.integers(0, 2, size=n).astype(np.int64)
        for cls in (LogisticRegression, LinearSVM, DecisionTree,
                    BernoulliNaiveBayes, KNearestNeighbors):
            pred = cls().fit(X, y).predict(X)
            assert pred.shape == (n,)
