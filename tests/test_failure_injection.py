"""Failure injection: the tool must degrade gracefully, never crash.

Real-world corpora contain broken, hostile and weird files; §V analyzed
8,000+ files in one run, so a single bad file must never abort a run.
"""

import os

import pytest

from repro.analysis import Detector
from repro.tool import Wape
from repro.vulnerabilities.catalog import sqli_info


@pytest.fixture(scope="module")
def detector():
    return Detector([sqli_info().config])


class TestMalformedInputs:
    @pytest.mark.parametrize("source", [
        "<?php $x = ;",                      # syntax error
        "<?php function f( {",               # unterminated decl
        "<?php class {",                     # missing name
        "<?php 'unterminated",               # bad string
        "<?php /* unterminated comment",
        "\x00\x01\x02 binary garbage",
        "<?php \xef\xbb\xbf $x = 1;",        # BOM-ish noise
        "",                                  # empty
        "<?php",                             # open tag only
        "just plain text, no php",
    ])
    def test_detect_file_never_raises(self, tmp_path, detector, source):
        path = tmp_path / "weird.php"
        path.write_bytes(source.encode("utf-8", errors="ignore"))
        result = detector.detect_file(str(path))
        assert result.filename == str(path)
        # either a parse error was captured or candidates were computed
        assert result.parse_error is not None or \
            isinstance(result.candidates, list)

    def test_missing_file_captured(self, detector):
        result = detector.detect_file("/nonexistent/nope.php")
        assert result.parse_error

    def test_directory_as_file_captured(self, detector, tmp_path):
        result = detector.detect_file(str(tmp_path))
        assert result.parse_error

    def test_invalid_utf8_is_replaced(self, tmp_path, detector):
        path = tmp_path / "latin.php"
        path.write_bytes(b"<?php $x = 'caf\xe9'; mysql_query($_GET['q']);")
        result = detector.detect_file(str(path))
        assert result.parse_error is None
        assert len(result.candidates) == 1


class TestTreeResilience:
    def test_bad_files_do_not_poison_the_tree(self, tmp_path, detector):
        (tmp_path / "broken.php").write_text("<?php $x = ;")
        (tmp_path / "binary.php").write_bytes(bytes(range(256)))
        (tmp_path / "good.php").write_text(
            "<?php mysql_query($_GET['q']);")
        results = detector.detect_tree(str(tmp_path))
        assert len(results) == 3
        good = [r for r in results if r.filename.endswith("good.php")]
        assert len(good[0].candidates) == 1
        broken = [r for r in results if r.parse_error]
        assert len(broken) >= 1

    def test_wape_tree_counts_errors(self, tmp_path):
        # the broken file mentions a sink and a source marker so the
        # relevance prefilter keeps it (skipped files are never parsed,
        # so they report no diagnostics — the documented contract)
        (tmp_path / "broken.php").write_text("<?php echo $_GET[")
        (tmp_path / "ok.php").write_text("<?php echo $_GET['m'];")
        report = Wape().analyze_tree(str(tmp_path))
        assert len(report.parse_errors) == 1
        assert len(report.real_vulnerabilities) == 1

    def test_prefilter_off_restores_diagnostics_everywhere(self,
                                                           tmp_path):
        from repro.analysis.options import ScanOptions
        (tmp_path / "broken.php").write_text("<?php if (")  # no marker
        report = Wape().analyze_tree(str(tmp_path))
        assert len(report.parse_errors) == 0  # skipped unparsed
        report = Wape().analyze_tree(
            str(tmp_path), ScanOptions(prefilter=False))
        assert len(report.parse_errors) == 1

    def test_empty_tree(self, tmp_path, detector):
        assert detector.detect_tree(str(tmp_path)) == []

    def test_non_php_files_skipped(self, tmp_path, detector):
        (tmp_path / "README.md").write_text("# docs")
        (tmp_path / "data.json").write_text("{}")
        (tmp_path / "script.PHP").write_text(
            "<?php mysql_query($_GET['x']);")  # extension case-insensitive
        results = detector.detect_tree(str(tmp_path))
        assert len(results) == 1
        assert len(results[0].candidates) == 1


class TestPathologicalSources:
    def test_deep_expression_nesting_contained(self, detector):
        # deep parenthesization: either parses fine or is captured as an
        # error by the recursion guard — never an unhandled crash
        source = "<?php $x = " + "(" * 400 + "1" + ")" * 400 + ";"
        import repro.exceptions
        try:
            detector.detect_source(source)
        except (repro.exceptions.PhpSyntaxError, RecursionError):
            pytest.skip("depth beyond parser limit is acceptable")

    def test_very_long_line(self, detector):
        source = "<?php $x = '" + "a" * 200_000 + "';"
        assert detector.detect_source(source) == []

    def test_many_statements(self, detector):
        source = "<?php " + " ".join(f"$v{i} = {i};"
                                     for i in range(3_000))
        assert detector.detect_source(source) == []

    def test_many_candidates_single_file(self, detector):
        lines = [f"mysql_query($_GET['k{i}']);" for i in range(300)]
        cands = detector.detect_source("<?php " + "\n".join(lines))
        assert len(cands) == 300

    def test_huge_interpolated_string(self, detector):
        parts = " ".join(f"${{'v{i}'}}" for i in range(50))
        source = f'<?php $s = "{parts}"; mysql_query($_GET[\'x\']);'
        assert len(detector.detect_source(source)) == 1

    def test_taint_explosion_bounded(self, detector):
        # 40 sources merged into one variable: the set union must not blow
        # up combinatorially
        reads = " . ".join(f"$_GET['k{i}']" for i in range(40))
        cands = detector.detect_source(
            f"<?php $q = {reads}; mysql_query($q);")
        assert len(cands) == 40


class TestCorrectorResilience:
    def test_correct_source_with_empty_candidates(self):
        from repro.corrector import CodeCorrector
        result = CodeCorrector().correct_source("<?php $x = 1;", [])
        assert not result.changed
        assert result.source == "<?php $x = 1;"

    def test_correct_missing_file_raises_cleanly(self):
        from repro.corrector import CodeCorrector
        with pytest.raises(OSError):
            CodeCorrector().correct_file("/no/such/file.php", [])
