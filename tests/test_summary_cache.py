"""The content-hash-keyed compositional summary cache and its pack tier.

Covers, bottom-up:

* :class:`repro.php.ast_store.PackFile` — the buffered single-file pack
  both cache tiers (and ``ResultCache``) write through;
* AST cache format negotiation — a stale pre-format-2 entry (3-tuple
  payload) is evicted cleanly, never unpickle-crashed into a scan;
* :class:`repro.analysis.summaries.SummaryCache` — roundtrip, path
  relativization, corrupt-entry eviction, key invalidation discipline;
* the end-to-end property the tier exists for: a summary-warm process
  scans an include project **without re-executing dependency bodies**
  and reports byte-identical findings.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.analysis.model import (
    STEP_ASSIGN,
    STEP_CALL,
    FunctionSummary,
    PathStep,
    Taint,
)
from repro.analysis.options import ScanOptions
from repro.analysis.summaries import SUMMARY_FORMAT, SummaryCache
from repro.php.ast_store import AST_FORMAT, AstCache, AstStore, PackFile

FP = "f" * 64


# ---------------------------------------------------------------------------
# PackFile
# ---------------------------------------------------------------------------

class TestPackFile:
    def test_puts_are_buffered_until_flush(self, tmp_path):
        path = str(tmp_path / "pack.pkl")
        pack = PackFile(path)
        pack.put("k", b"v")
        assert pack.get("k") == b"v"        # visible in-process...
        assert not os.path.exists(path)     # ...but nothing on disk yet
        pack.flush()
        assert PackFile(path).get("k") == b"v"

    def test_flush_merges_with_a_concurrent_flush(self, tmp_path):
        # two workers over the same pack: each must keep the other's keys
        path = str(tmp_path / "pack.pkl")
        a, b = PackFile(path), PackFile(path)
        a.put("from-a", b"1")
        b.put("from-b", b"2")
        a.flush()
        b.flush()  # re-reads the disk pack a just wrote, then merges
        survivor = PackFile(path)
        assert survivor.get("from-a") == b"1"
        assert survivor.get("from-b") == b"2"

    def test_corrupt_pack_is_flagged_and_removed(self, tmp_path):
        path = str(tmp_path / "pack.pkl")
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        pack = PackFile(path)
        assert pack.get("anything") is None
        assert pack.corrupt
        assert not os.path.exists(path)     # fresh start for the rewrite

    def test_non_dict_pack_counts_as_corrupt(self, tmp_path):
        path = str(tmp_path / "pack.pkl")
        with open(path, "wb") as f:
            pickle.dump(["not", "a", "dict"], f)
        pack = PackFile(path)
        assert pack.get("anything") is None
        assert pack.corrupt

    def test_discard_drops_pending_and_loaded(self, tmp_path):
        path = str(tmp_path / "pack.pkl")
        first = PackFile(path)
        first.put("old", b"1")
        first.flush()
        second = PackFile(path)
        second.put("new", b"2")
        second.discard("old")
        second.discard("new")
        assert second.get("old") is None
        assert second.get("new") is None
        second.flush()
        # the eviction persists: "old" must not be resurrected by the
        # disk merge — a corrupt/stale entry is paid for exactly once
        survivor = PackFile(path)
        assert survivor.get("old") is None
        assert survivor.get("new") is None

    def test_put_after_discard_wins(self, tmp_path):
        path = str(tmp_path / "pack.pkl")
        pack = PackFile(path)
        pack.discard("k")
        pack.put("k", b"fresh")
        pack.flush()
        assert PackFile(path).get("k") == b"fresh"


# ---------------------------------------------------------------------------
# AST cache format negotiation
# ---------------------------------------------------------------------------

class TestAstFormatNegotiation:
    """Stale pre-format-2 entries must be evicted, never served."""

    STALE = ("fake-program", (), None)  # 3-tuple: the format-1 layout

    def test_stale_legacy_file_entry_is_evicted(self, tmp_path):
        cache = AstCache(str(tmp_path))
        key = AstStore.source_key("<?php echo 1;\n")
        entry = os.path.join(cache.directory, key + ".pkl")
        with open(entry, "wb") as f:
            pickle.dump(self.STALE, f)
        assert cache.get(key) is None
        assert cache.misses == 1
        assert cache.evictions == 1
        assert not os.path.exists(entry)

    def test_stale_pack_blob_is_evicted(self, tmp_path):
        cache = AstCache(str(tmp_path))
        key = AstStore.source_key("<?php echo 1;\n")
        cache.pack.put(key, pickle.dumps(self.STALE))
        cache.flush()
        fresh = AstCache(str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.evictions == 1
        assert fresh.get(key) is None   # stays gone after the discard

    def test_store_reparses_over_a_stale_entry(self, tmp_path):
        source = "<?php $q = $_GET['q']; echo $q;\n"
        key = AstStore.source_key(source)
        cache = AstCache(str(tmp_path))
        cache.pack.put(key, pickle.dumps(self.STALE))
        cache.flush()

        store = AstStore(disk=AstCache(str(tmp_path)))
        program, warnings = store.parse_recovering(source, "a.php")
        assert store.parses == 1 and store.disk_hits == 0
        assert program is not None and warnings == []
        assert store.module_for(key) is not None  # re-lowered too
        store.flush()
        warm = AstStore(disk=AstCache(str(tmp_path)))
        warm.parse_recovering(source, "b.php")
        assert warm.parses == 0 and warm.disk_hits == 1

    def test_directory_is_format_versioned(self, tmp_path):
        assert AstCache(str(tmp_path)).directory.endswith(
            f"ast-v{AST_FORMAT}")
        cache = SummaryCache(str(tmp_path), FP)
        assert cache.directory.endswith(f"ast-v{AST_FORMAT}")
        assert cache.pack.path.endswith("sum-pack.pkl")


# ---------------------------------------------------------------------------
# SummaryCache
# ---------------------------------------------------------------------------

def _state(base: str) -> tuple[dict, dict]:
    """A small (env, summaries) with absolute path-step files."""
    dep = os.path.join(base, "lib", "dep.php")
    env = {"g": frozenset({
        Taint("$_GET['g']", 2,
              (PathStep(STEP_ASSIGN, "g", 2, dep),))})}
    summary = FunctionSummary(
        name="q", param_names=["x"], filename=dep,
        returns_params={0: (PathStep(STEP_CALL, "q", 1, dep),)},
        param_sinks=[(0, "xss", "echo", "function", 3,
                      (PathStep(STEP_CALL, "q", 3, dep),))],
        returned_sources=[Taint("$_POST['p']", 4,
                                (PathStep(STEP_ASSIGN, "p", 4, dep),))])
    return env, {"q": summary}


class TestSummaryCache:
    def test_roundtrip_preserves_state(self, tmp_path):
        base = str(tmp_path / "proj")
        filename = os.path.join(base, "lib", "index.php")
        env, summaries = _state(base)
        cache = SummaryCache(str(tmp_path / "cache"), FP)
        cache.put("k", filename, env, summaries)
        cache.flush()

        warm = SummaryCache(str(tmp_path / "cache"), FP)
        got = warm.get("k", filename)
        assert got is not None and warm.hits == 1
        got_env, got_summaries = got
        assert got_env == env
        assert got_summaries["q"] == summaries["q"]

    def test_entries_rebase_onto_a_moved_root(self, tmp_path):
        # the survives-a-moved-checkout property ResultCache pioneered
        old = str(tmp_path / "old")
        new = str(tmp_path / "new")
        env, summaries = _state(old)
        cache = SummaryCache(str(tmp_path / "cache"), FP)
        cache.put("k", os.path.join(old, "lib", "index.php"),
                  env, summaries)
        cache.flush()

        warm = SummaryCache(str(tmp_path / "cache"), FP)
        got_env, got_summaries = warm.get(
            "k", os.path.join(new, "lib", "index.php"))
        moved_env, moved_summaries = _state(new)
        assert got_env == moved_env
        assert got_summaries["q"] == moved_summaries["q"]
        expected = os.path.join(new, "lib", "dep.php")
        assert got_summaries["q"].filename == expected

    def test_miss_and_corrupt_eviction(self, tmp_path):
        cache = SummaryCache(str(tmp_path), FP)
        assert cache.get("absent", "/p/x.php") is None
        assert cache.misses == 1
        cache.pack.put("bad", b"not a pickle")
        cache.flush()
        warm = SummaryCache(str(tmp_path), FP)
        assert warm.get("bad", "/p/x.php") is None
        assert warm.misses == 1 and warm.evictions == 1
        assert warm.get("bad", "/p/x.php") is None  # discarded

    def test_unpicklable_state_is_skipped_not_fatal(self, tmp_path):
        cache = SummaryCache(str(tmp_path), FP)
        env = {"g": frozenset()}
        # a lambda as the taint source survives the path mapping (its
        # path is empty) but defeats pickle -> the put is dropped whole
        cache.put("k", "/p/x.php", env,
                  {"q": FunctionSummary(
                      name="q",
                      returned_sources=[Taint(lambda: None, 1)])})
        assert cache.puts == 0
        cache.flush()
        assert cache.get("k", "/p/x.php") is None

    def test_shares_the_ast_tier_directory(self, tmp_path):
        ast = AstCache(str(tmp_path))
        summaries = SummaryCache(str(tmp_path), FP)
        assert os.path.dirname(summaries.pack.path) == ast.directory


class TestStateKeyInvalidation:
    """The digest covers content + closure + knowledge fingerprint."""

    def test_content_edit_changes_the_key(self, tmp_path):
        cache = SummaryCache(str(tmp_path), FP)
        closure = [("lib.php", "d" * 64)]
        assert cache.state_key("a" * 64, closure) != \
            cache.state_key("b" * 64, closure)

    def test_dependency_edit_changes_the_key(self, tmp_path):
        cache = SummaryCache(str(tmp_path), FP)
        own = "a" * 64
        assert cache.state_key(own, [("lib.php", "d" * 64)]) != \
            cache.state_key(own, [("lib.php", "e" * 64)])
        # a renamed dependency invalidates too (relative path is keyed)
        assert cache.state_key(own, [("lib.php", "d" * 64)]) != \
            cache.state_key(own, [("other.php", "d" * 64)])

    def test_fingerprint_changes_the_key(self, tmp_path):
        own, closure = "a" * 64, [("lib.php", "d" * 64)]
        one = SummaryCache(str(tmp_path / "1"), "1" * 64)
        two = SummaryCache(str(tmp_path / "2"), "2" * 64)
        assert one.state_key(own, closure) != two.state_key(own, closure)

    def test_closure_order_is_significant(self, tmp_path):
        # closure order is deterministic (include order); a reordering
        # means a different composition, so it must not collide
        cache = SummaryCache(str(tmp_path), FP)
        a, b = ("a.php", "1" * 64), ("b.php", "2" * 64)
        assert cache.state_key("c" * 64, [a, b]) != \
            cache.state_key("c" * 64, [b, a])

    def test_format_constant_is_in_the_digest(self, tmp_path):
        cache = SummaryCache(str(tmp_path), FP)
        key = cache.state_key("a" * 64, [])
        assert key != cache.fingerprint
        assert SUMMARY_FORMAT >= 1


# ---------------------------------------------------------------------------
# end to end: summary-warm scans do not re-execute dependency bodies
# ---------------------------------------------------------------------------

def _write_project(root) -> None:
    (root / "lib.php").write_text(
        "<?php\n"
        "$prefix = $_GET['prefix'];\n"
        "function q($x) { return $x; }\n"
        "function clean($x) { return htmlentities($x); }\n")
    (root / "index.php").write_text(
        "<?php include 'lib.php';\n"
        "$q = $_GET['q'];\n"
        "echo q($q);\n"
        "echo $prefix;\n"
        "echo clean($_GET['safe']);\n")
    (root / "admin.php").write_text(
        "<?php require 'lib.php'; echo q($_GET['id']);\n")


def _finding_keys(report):
    return sorted(
        (os.path.basename(entry.filename), o.vuln_class,
         o.candidate.sink_line, o.candidate.entry_point,
         tuple((s.kind, s.detail, s.line, s.file)
               for s in o.candidate.path))
        for entry in report.files for o in entry.outcomes)


class TestSummaryWarmScan:
    @pytest.fixture()
    def project(self, tmp_path):
        root = tmp_path / "proj"
        root.mkdir()
        _write_project(root)
        return root

    def _scan(self, project, cache_dir, monkeypatch):
        """One jobs=1 scan; returns (report, dependency-body runs).

        Scanned files go through ``analyze()``, which always forwards a
        ``preset_summaries`` keyword; the dependency-state path
        (:meth:`IncludeContext._state`) never does.  Counting only the
        latter isolates "a dependency body was re-executed".
        """
        from repro.analysis.engine import TaintEngine
        from repro.tool import Wape

        runs: list[str] = []
        original = TaintEngine.analyze_with_state

        def counted(self, program, filename="<source>", *args, **kwargs):
            if "preset_summaries" not in kwargs:
                runs.append(filename)
            return original(self, program, filename, *args, **kwargs)

        with monkeypatch.context() as patch:
            patch.setattr(TaintEngine, "analyze_with_state", counted)
            report = Wape().analyze_tree(
                str(project), ScanOptions(jobs=1, cache_dir=cache_dir))
        return report, runs

    def test_warm_scan_composes_without_reexecuting_deps(
            self, project, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cold_report, cold_runs = self._scan(project, cache_dir,
                                            monkeypatch)
        # cold: lib.php ran as a dependency (analyze_with_state is the
        # dependency-state path; scanned files go through analyze())
        assert any(r.endswith("lib.php") for r in cold_runs)
        pack = os.path.join(cache_dir, f"ast-v{AST_FORMAT}",
                            "sum-pack.pkl")
        assert os.path.exists(pack)

        # wipe the result cache but keep the ast-v<N>/ tier: next scan
        # recomputes every file yet replays dependency state from disk
        for name in os.listdir(cache_dir):
            if not name.startswith("ast-v"):
                import shutil
                shutil.rmtree(os.path.join(cache_dir, name))
        warm_report, warm_runs = self._scan(project, cache_dir,
                                            monkeypatch)
        assert warm_runs == []
        assert _finding_keys(warm_report) == _finding_keys(cold_report)
        assert any(o.vuln_class == "xss"
                   for entry in warm_report.files
                   for o in entry.outcomes)

    def test_dependency_edit_invalidates_the_summary(
            self, project, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        self._scan(project, cache_dir, monkeypatch)
        (project / "lib.php").write_text(
            "<?php\n"
            "$prefix = 'constant now';\n"
            "function q($x) { return htmlentities($x); }\n"
            "function clean($x) { return htmlentities($x); }\n")
        report, runs = self._scan(project, cache_dir, monkeypatch)
        assert any(r.endswith("lib.php") for r in runs)  # recomputed
        keys = _finding_keys(report)
        # q() now sanitizes and $prefix is clean: the q()/prefix flows
        # are gone everywhere
        assert not any(k for k in keys if k[0] == "admin.php")
