"""Scan-fleet tests: sticky routing, supervision, streaming, eviction."""

import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.options import ScanOptions
from repro.exceptions import ServiceError
from repro.service import FleetService, ServiceClient
from repro.service.fleet import CRASH_MARKER_ENV, HashRing
from repro.tool.wap import Wape

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")


@pytest.fixture(scope="module")
def tool():
    return Wape()


@pytest.fixture(scope="module")
def crash_marker(tmp_path_factory):
    """Path workers watch for the crash injector (no file = no crash).

    Exported *before* the fleet forks its workers so every child (and
    every respawned child) inherits the variable.
    """
    marker = str(tmp_path_factory.mktemp("crash") / "crash-now")
    os.environ[CRASH_MARKER_ENV] = marker
    yield marker
    os.environ.pop(CRASH_MARKER_ENV, None)


@pytest.fixture(scope="module")
def fleet(tool, crash_marker):
    svc = FleetService(tool, ScanOptions(jobs=1), workers=2, max_queue=4)
    svc.start_background()
    yield svc
    svc.server.shutdown()
    svc.close()


@pytest.fixture(scope="module")
def client(fleet):
    c = ServiceClient(port=fleet.port)
    c.wait_ready()
    return c


@pytest.fixture()
def app(tmp_path):
    root = tmp_path / "demo_app"
    shutil.copytree(DEMO_APP, root)
    return str(root)


def two_apps_on_distinct_workers(fleet, tmp_path):
    """Two demo-app copies the ring routes to different workers."""
    first = tmp_path / "app-a"
    shutil.copytree(DEMO_APP, first)
    target = fleet.ring.route(str(first))
    for i in range(64):
        second = tmp_path / f"app-b{i}"
        if fleet.ring.route(str(second)) != target:
            shutil.copytree(DEMO_APP, second)
            return str(first), str(second)
    raise AssertionError("ring never split 65 paths across 2 workers")


class TestHashRing:
    def test_routing_is_deterministic_and_balanced(self):
        ring = HashRing(4)
        routes = [ring.route(f"/srv/project-{i}") for i in range(400)]
        assert routes == [ring.route(f"/srv/project-{i}")
                          for i in range(400)]
        counts = [routes.count(w) for w in range(4)]
        assert all(count > 40 for count in counts)  # no starved shard

    def test_single_worker_ring(self):
        ring = HashRing(1)
        assert {ring.route(f"/p{i}") for i in range(10)} == {0}


class TestFleetProtocol:
    def test_health_and_status_shape(self, client, fleet):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        status = client.status()
        assert len(status["workers"]) == 2
        for worker in status["workers"]:
            assert worker["alive"] is True
            assert isinstance(worker["pid"], int)
            assert worker["queue_depth"] == 0

    def test_sticky_routing_keeps_warm_state(self, client, fleet, app):
        cold = client.scan(app)
        warm = client.scan(app)
        assert cold["service"]["incremental"] is False
        assert warm["service"]["incremental"] is True
        assert cold["service"]["worker"] == warm["service"]["worker"] \
            == fleet.ring.route(app)
        assert warm["summary"]["real_vulnerabilities"] > 0

    def test_validation_shared_with_single_daemon(self, client, app):
        status, raw = client._request(
            "POST", "/v1/scan", {"root": app, "timeout": True})
        assert status == 400
        assert "timeout must be a positive number" in \
            json.loads(raw)["error"]
        status, raw = client._request("GET", "/v1/health?probe=1")
        assert status == 200

    def test_per_worker_metrics_labels(self, client, app):
        client.scan(app)
        text = client.metrics_text()
        assert 'wape_worker_scans_total{worker="' in text
        assert "wape_scan_requests" in text


class TestSupervision:
    def test_sigkilled_worker_is_respawned_and_request_retried(
            self, client, fleet, app):
        client.scan(app)  # warm it so the loss is observable
        index = fleet.ring.route(app)
        worker = fleet.workers[index]
        restarts_before = worker.restarts
        os.kill(worker.process.pid, signal.SIGKILL)
        report = client.scan(app)
        assert report["service"]["retried"] is True
        assert report["service"]["incremental"] is False  # fresh child
        assert report["summary"]["real_vulnerabilities"] > 0
        assert worker.restarts == restarts_before + 1
        assert worker.process.is_alive()
        status = client.status()
        assert status["workers"][index]["restarts"] == \
            restarts_before + 1

    def test_crash_marker_mid_request_is_retried_once(
            self, client, fleet, crash_marker, app):
        with open(crash_marker, "w", encoding="utf-8") as f:
            f.write("die\n")
        report = client.scan(app)
        assert report["service"]["retried"] is True
        assert report["summary"]["real_vulnerabilities"] > 0
        assert not os.path.exists(crash_marker)  # consumed exactly once
        assert client.scan(app)["service"]["retried"] is False


class TestFleetStreaming:
    def test_stream_orders_files_deterministically(self, client, app):
        events = list(client.scan_stream(app))
        assert events[0]["event"] == "scan_started"
        assert "worker" in events[0]
        assert events[-1]["event"] == "scan_done"
        paths = [e["path"] for e in events[1:-1]]
        assert paths and len(paths) == len(set(paths))
        # deterministic discovery order: a re-stream replays it exactly
        replay = [e["path"] for e in client.scan_stream(app)
                  if e["event"] == "file"]
        assert replay == paths
        report = events[-1]["report"]
        assert "files" not in report
        assert report["service"]["files_streamed"] == len(paths)


class TestBackpressureAndEviction:
    def test_full_worker_queue_rejects_with_503(self, tool, app):
        svc = FleetService(tool, ScanOptions(jobs=1), workers=1,
                           max_queue=0)
        svc.start_background()
        try:
            c = ServiceClient(port=svc.port)
            c.wait_ready()
            with pytest.raises(ServiceError, match="queue full"):
                c.scan(app)
        finally:
            svc.server.shutdown()
            svc.close()

    def test_lru_eviction_under_tiny_budget(self, tool, tmp_path):
        svc = FleetService(tool, ScanOptions(jobs=1), workers=1,
                           memory_budget_mb=0.01)
        svc.start_background()
        try:
            c = ServiceClient(port=svc.port)
            c.wait_ready()
            roots = []
            for name in ("one", "two"):
                root = tmp_path / name
                shutil.copytree(DEMO_APP, root)
                roots.append(str(root))
            c.scan(roots[0])
            c.scan(roots[1])  # budget blown: roots[0] must be evicted
            status = c.status()
            warm = [r["root"] for r in status["roots"]]
            assert roots[0] not in warm
            assert status["workers"][0]["evictions"] >= 1
            # evicted root re-scans cold, not incorrectly
            assert c.scan(roots[0])["service"]["incremental"] is False
        finally:
            svc.server.shutdown()
            svc.close()


class TestParallelism:
    def test_distinct_roots_scan_concurrently(self, client, fleet,
                                              tmp_path):
        first, second = two_apps_on_distinct_workers(fleet, tmp_path)
        single_start = time.perf_counter()
        client.scan(first, forget=True)
        single = time.perf_counter() - single_start
        results = {}

        def scan(root):
            results[root] = ServiceClient(port=client.port).scan(
                root, forget=True)

        threads = [threading.Thread(target=scan, args=(root,))
                   for root in (first, second)]
        pair_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        pair = time.perf_counter() - pair_start
        assert results[first]["summary"]["real_vulnerabilities"] > 0
        assert results[second]["summary"]["real_vulnerabilities"] > 0
        assert results[first]["service"]["worker"] != \
            results[second]["service"]["worker"]
        if (os.cpu_count() or 1) >= 2:
            # the acceptance bar: true process parallelism
            assert pair < 1.9 * single, (pair, single)


class TestServeWorkersCommand:
    @pytest.mark.slow
    def test_wape_serve_workers_subprocess_end_to_end(self, app):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                         os.pardir, "src")
        env.pop(CRASH_MARKER_ENV, None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            line = proc.stdout.readline()
            assert "listening on http://127.0.0.1:" in line
            port = int(line.rsplit(":", 1)[1])
            client = ServiceClient(port=port)
            client.wait_ready(deadline=60.0)
            assert client.health()["workers"] == 2
            report = client.scan(app)
            assert report["summary"]["real_vulnerabilities"] > 0
            assert "worker" in report["service"]
            client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
