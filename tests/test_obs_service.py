"""Daemon observability: ``/v1/status``, labeled metrics, ``wape top``.

Runs one logger-equipped daemon on an ephemeral port and checks the live
surfaces added by the scan observatory:

* ``GET /v1/status`` — uptime, queue depth, request totals, warm
  per-root state with approximate resident bytes;
* ``GET /metrics`` — per-endpoint request counters and latency
  histograms labeled by endpoint/method/status, plus the queue gauge;
* the service log — every request leaves correlated events
  (``scan_queued`` ... ``scan_served``) under the daemon's ``srv-`` run
  id and the request's ``X-Request-Id``;
* ``wape top`` — ``render_status`` and the ``--once`` liveness probe.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.analysis.options import ScanOptions
from repro.obs import JsonlLogger
from repro.service import ScanService, ServiceClient
from repro.tool.top import main as top_main
from repro.tool.top import render_status

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    return str(tmp_path_factory.mktemp("obs") / "service.jsonl")


@pytest.fixture(scope="module")
def service(log_path):
    svc = ScanService(options=ScanOptions(jobs=1),
                      logger=JsonlLogger(path=log_path))
    svc.start_background()
    yield svc
    svc.server.shutdown()
    svc.close()


@pytest.fixture(scope="module")
def client(service):
    c = ServiceClient(port=service.port)
    c.wait_ready()
    return c


@pytest.fixture()
def app(tmp_path):
    root = tmp_path / "demo_app"
    shutil.copytree(DEMO_APP, root)
    return str(root)


class TestStatusEndpoint:
    def test_status_shape(self, client, service):
        status = client.status()
        assert status["status"] == "ok"
        assert status["run_id"].startswith("srv-")
        assert status["uptime_seconds"] >= 0
        assert status["queue_depth"] == 0
        assert status["max_queue"] == service.max_queue
        assert status["in_flight"] == []
        totals = status["requests"]
        assert set(totals) >= {"served", "errors", "timeouts",
                               "rejections"}

    def test_warm_root_appears_with_size_estimate(self, client, app):
        client.scan(app)
        status = client.status()
        roots = {r["root"]: r for r in status["roots"]}
        assert app in roots
        entry = roots[app]
        assert entry["warm"] is True
        assert entry["files"] > 0 and entry["candidates"] > 0
        assert entry["approx_bytes"] is None \
            or entry["approx_bytes"] > 0
        assert status["requests"]["served"] >= 1


class TestLabeledMetrics:
    def test_request_metrics_carry_endpoint_labels(self, client, app):
        client.scan(app)
        client.health()
        text = client.metrics_text()
        assert ('wape_http_requests_total{endpoint="/v1/health",'
                'method="GET",status="200"}') in text
        assert ('wape_http_requests_total{endpoint="/v1/scan",'
                'method="POST",status="200"}') in text
        assert ('wape_http_request_seconds{endpoint="/v1/scan",'
                'method="POST",status="200",quantile="0.95"}') in text
        assert text.count(
            "# TYPE wape_http_requests_total counter") == 1
        assert "wape_queue_depth 0" in text

    def test_unknown_endpoints_fold_into_other(self, client):
        client._request("GET", "/v1/nope")
        text = client.metrics_text()
        assert ('wape_http_requests_total{endpoint="other",'
                'method="GET",status="404"}') in text


class TestServiceLog:
    def test_request_events_are_correlated(self, client, app, log_path,
                                           service):
        report = client.scan(app)
        request_id = report["service"]["request_id"]
        with open(log_path, encoding="utf-8") as f:
            records = [json.loads(line) for line in f]
        mine = [r for r in records if r.get("request_id") == request_id]
        events = [r["event"] for r in mine]
        assert "scan_queued" in events and "scan_served" in events
        assert all(r["run_id"] == service.run_id for r in mine)
        # pipeline events from the scan share the daemon's run id too
        assert any(r["event"] == "scan_start" for r in records)


class TestWapeTop:
    def test_render_status_panel(self, client, app):
        client.scan(app)
        panel = render_status(client.status())
        assert "wape daemon" in panel and "uptime" in panel
        assert "warm roots (" in panel
        assert app in panel

    def test_once_snapshot_and_unreachable_probe(self, service, capsys):
        assert top_main(["--port", str(service.port), "--once"]) == 0
        assert "wape daemon" in capsys.readouterr().out
        # a port nothing listens on: exit 1, message on stderr
        assert top_main(["--port", "1", "--once"]) == 1
        assert "unreachable" in capsys.readouterr().err
