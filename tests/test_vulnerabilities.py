"""Tests for the vulnerability class catalogs and sub-modules."""

import pytest

from repro.vulnerabilities import (
    ORIGIN_SUBMODULE,
    ORIGIN_V21,
    ORIGIN_WEAPON,
    SUBMODULE_CLIENT_SIDE,
    SUBMODULE_QUERY,
    SUBMODULE_RCE_FILE,
    build_submodules,
    original_registry,
    wape_registry,
)


class TestRegistries:
    def test_original_has_eight_classes(self):
        assert len(original_registry()) == 8

    def test_wape_has_fifteen_classes(self):
        # 8 original + SF + CS + LDAPI + XPathI + NoSQLI + HI + EI + wpsqli
        registry = wape_registry()
        assert len(registry) == 16
        new = [i for i in registry
               if i.origin in (ORIGIN_SUBMODULE, ORIGIN_WEAPON)]
        # the paper's "7 new classes" plus the WordPress SQLI weapon
        assert len(new) == 8

    def test_original_class_ids(self):
        ids = {info.class_id for info in original_registry()}
        assert ids == {"sqli", "xss", "rfi", "lfi", "dt_pt", "scd",
                       "osci", "phpci"}

    def test_new_class_ids(self):
        registry = wape_registry()
        new = {i.class_id for i in registry if i.origin != ORIGIN_V21}
        assert new == {"sf", "cs", "ldapi", "xpathi", "nosqli", "hi", "ei",
                       "wpsqli"}

    def test_every_class_has_config(self):
        for info in wape_registry():
            assert info.config.class_id == info.class_id
            assert info.display_name

    def test_duplicate_add_rejected(self):
        registry = original_registry()
        with pytest.raises(ValueError):
            registry.add(registry.get("sqli"))

    def test_table4_sf_sinks(self):
        info = wape_registry().get("sf")
        names = {s.name for s in info.config.sinks}
        assert names == {"setcookie", "setrawcookie", "session_id"}
        assert info.submodule == SUBMODULE_RCE_FILE

    def test_table4_cs_sinks(self):
        info = wape_registry().get("cs")
        names = {s.name for s in info.config.sinks}
        assert names == {"file_put_contents", "file_get_contents"}
        assert info.submodule == SUBMODULE_CLIENT_SIDE

    def test_table4_ldapi_sinks(self):
        info = wape_registry().get("ldapi")
        names = {s.name for s in info.config.sinks}
        assert names == {"ldap_add", "ldap_delete", "ldap_list",
                         "ldap_read", "ldap_search"}
        assert info.submodule == SUBMODULE_QUERY

    def test_table4_xpathi_sinks(self):
        info = wape_registry().get("xpathi")
        names = {s.name for s in info.config.sinks}
        assert names == {"xpath_eval", "xptr_eval",
                         "xpath_eval_expression"}
        assert info.submodule == SUBMODULE_QUERY

    def test_nosqli_weapon_config(self):
        info = wape_registry().get("nosqli")
        names = {s.name for s in info.config.sinks}
        assert names == {"find", "findone", "findandmodify", "insert",
                         "remove", "save", "execute"}
        # the paper's §IV-C1 configuration
        assert "mysql_real_escape_string" in info.config.sanitizers

    def test_wpsqli_weapon_config(self):
        info = wape_registry().get("wpsqli")
        names = {s.name for s in info.config.sinks}
        assert "query" in names and "get_results" in names
        assert "prepare" in info.config.sanitizer_methods
        assert "esc_sql" in info.config.sanitizers

    def test_report_groups(self):
        registry = wape_registry()
        assert registry.get("rfi").group() == "Files"
        assert registry.get("lfi").group() == "Files"
        assert registry.get("dt_pt").group() == "Files"
        assert registry.get("wpsqli").group() == "SQLI"
        assert registry.get("sqli").group() == "SQLI"


class TestSubModules:
    def test_three_submodules_built(self):
        subs = build_submodules(wape_registry())
        assert set(subs) == {SUBMODULE_RCE_FILE, SUBMODULE_CLIENT_SIDE,
                             SUBMODULE_QUERY}

    def test_rce_file_membership(self):
        subs = build_submodules(wape_registry())
        ids = set(subs[SUBMODULE_RCE_FILE].class_ids)
        assert ids == {"osci", "phpci", "rfi", "lfi", "dt_pt", "scd", "sf"}

    def test_query_membership(self):
        subs = build_submodules(wape_registry())
        assert set(subs[SUBMODULE_QUERY].class_ids) == \
            {"sqli", "ldapi", "xpathi"}

    def test_client_side_membership(self):
        subs = build_submodules(wape_registry())
        assert set(subs[SUBMODULE_CLIENT_SIDE].class_ids) == {"xss", "cs"}


class TestDetectionPerClass:
    """One end-to-end detection per class proves each catalog works."""

    @pytest.fixture(scope="class")
    def subs(self):
        return build_submodules(wape_registry())

    def detect(self, subs, source):
        out = []
        for sub in subs.values():
            out.extend(sub.detect_source("<?php " + source))
        return sorted({c.vuln_class for c in out})

    def test_sqli(self, subs):
        assert self.detect(subs, "mysql_query($_GET['q']);") == ["sqli"]

    def test_xss_reflected(self, subs):
        assert self.detect(subs, "echo $_GET['m'];") == ["xss"]

    def test_xss_stored(self, subs):
        src = ("$r = mysql_fetch_assoc($res); echo $r['comment'];")
        assert self.detect(subs, src) == ["xss"]

    def test_rfi(self, subs):
        assert self.detect(subs, "include $_GET['page'];") == ["rfi"]

    def test_lfi_refinement(self, subs):
        src = "include 'pages/' . $_GET['page'] . '.php';"
        assert self.detect(subs, src) == ["lfi"]

    def test_dt_pt(self, subs):
        assert self.detect(subs, "$f = fopen($_GET['p'], 'r');") == ["dt_pt"]

    def test_scd(self, subs):
        assert self.detect(subs, "readfile($_GET['f']);") == ["scd"]

    def test_osci(self, subs):
        assert self.detect(subs, "system($_GET['cmd']);") == ["osci"]

    def test_osci_backtick(self, subs):
        assert self.detect(subs, "$o = `ls {$_GET['d']}`;") == ["osci"]

    def test_phpci(self, subs):
        assert self.detect(subs, "eval($_POST['code']);") == ["phpci"]

    def test_sf(self, subs):
        assert self.detect(subs, "session_id($_GET['sid']);") == ["sf"]

    def test_cs(self, subs):
        src = "file_put_contents('comments.txt', $_POST['comment']);"
        assert self.detect(subs, src) == ["cs"]

    def test_ldapi(self, subs):
        src = "ldap_search($ds, $dn, '(uid=' . $_GET['u'] . ')');"
        assert self.detect(subs, src) == ["ldapi"]

    def test_xpathi(self, subs):
        src = "xpath_eval($ctx, \"//user[name='\" . $_GET['u'] . \"']\");"
        assert self.detect(subs, src) == ["xpathi"]

    def test_sanitized_sqli_silent(self, subs):
        src = ("$q = mysql_real_escape_string($_GET['q']); "
               "mysql_query($q);")
        assert self.detect(subs, src) == []

    def test_ldap_escape_sanitizes(self, subs):
        src = ("$u = ldap_escape($_GET['u']); "
               "ldap_search($ds, $dn, $u);")
        assert self.detect(subs, src) == []
