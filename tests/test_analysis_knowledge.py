"""Tests for the external ep/ss/san knowledge files (§III-A)."""

import pytest

from repro.analysis import (
    DetectorConfig,
    SinkSpec,
    SINK_ECHO,
    SINK_INCLUDE,
    SINK_METHOD,
    extend_config,
    load_config,
    parse_sink_line,
    render_sink_line,
    save_config,
)
from repro.exceptions import KnowledgeBaseError
from repro.vulnerabilities import wape_registry


class TestSinkLineFormat:
    def test_plain_function(self):
        spec = parse_sink_line("mysql_query")
        assert spec.name == "mysql_query"
        assert spec.kind == "function"
        assert spec.arg_positions is None

    def test_function_with_args(self):
        spec = parse_sink_line("mysqli_query:1")
        assert spec.arg_positions == (1,)

    def test_function_with_multiple_args(self):
        spec = parse_sink_line("f:0,2")
        assert spec.arg_positions == (0, 2)

    def test_method(self):
        spec = parse_sink_line("->query")
        assert spec.kind == "method"

    def test_method_with_hint(self):
        spec = parse_sink_line("->query@wpdb:0")
        assert spec.receiver_hint == "wpdb"
        assert spec.arg_positions == (0,)

    @pytest.mark.parametrize("pseudo,kind", [
        ("<echo>", SINK_ECHO), ("<include>", SINK_INCLUDE),
    ])
    def test_pseudo_sinks(self, pseudo, kind):
        assert parse_sink_line(pseudo).kind == kind

    def test_malformed_raises(self):
        with pytest.raises(KnowledgeBaseError):
            parse_sink_line("not a sink!!")

    @pytest.mark.parametrize("line", [
        "mysql_query", "mysqli_query:1", "->query@wpdb:0", "<echo>",
        "->prepare", "f:0,2", "<include>",
    ])
    def test_render_parse_round_trip(self, line):
        assert render_sink_line(parse_sink_line(line)) == line


class TestFileRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        config = DetectorConfig(
            class_id="nosqli",
            display_name="NoSQL injection",
            entry_points=frozenset({"_GET", "_POST"}),
            source_functions=frozenset({"get_query_var"}),
            sinks=(SinkSpec("find", SINK_METHOD),
                   SinkSpec("mysql_query", arg_positions=(0,))),
            sanitizers=frozenset({"mysql_real_escape_string"}),
            sanitizer_methods=frozenset({"prepare"}),
        )
        directory = str(tmp_path / "nosqli")
        save_config(config, directory)
        loaded = load_config(directory)
        assert loaded.class_id == config.class_id
        assert loaded.entry_points == config.entry_points
        assert loaded.source_functions == config.source_functions
        assert set(loaded.sinks) == set(config.sinks)
        assert loaded.sanitizers == config.sanitizers
        assert loaded.sanitizer_methods == config.sanitizer_methods

    def test_all_catalog_classes_round_trip(self, tmp_path):
        for info in wape_registry():
            directory = str(tmp_path / info.class_id)
            save_config(info.config, directory)
            loaded = load_config(directory)
            assert loaded.class_id == info.class_id
            assert set(loaded.sinks) == set(info.config.sinks)
            assert loaded.sanitizers == info.config.sanitizers

    def test_comments_and_blanks_ignored(self, tmp_path):
        directory = tmp_path / "kb"
        directory.mkdir()
        (directory / "ep.txt").write_text("# comment\n\n$_GET\n")
        (directory / "ss.txt").write_text("mysql_query:0\n# nope\n")
        (directory / "san.txt").write_text("\naddslashes\n")
        config = load_config(str(directory))
        assert config.entry_points == frozenset({"_GET"})
        assert config.sanitizers == frozenset({"addslashes"})

    def test_class_id_from_directory_name(self, tmp_path):
        directory = tmp_path / "myclass"
        directory.mkdir()
        (directory / "ss.txt").write_text("f\n")
        assert load_config(str(directory)).class_id == "myclass"

    def test_missing_files_give_empty_sets(self, tmp_path):
        directory = tmp_path / "empty"
        directory.mkdir()
        config = load_config(str(directory))
        assert config.entry_points == frozenset()
        assert config.sinks == ()


class TestExtendConfig:
    def test_extend_adds_sanitizer(self):
        # the vfront `escape` scenario from §V-A
        base = wape_registry().get("sqli").config
        extended = extend_config(base, sanitizers={"escape"})
        assert "escape" in extended.sanitizers
        assert base.sanitizers <= extended.sanitizers

    def test_extend_detection_effect(self):
        from repro.analysis import Detector
        base = wape_registry().get("sqli").config
        src = ("<?php $v = escape($_GET['x']); "
               "mysql_query('w = ' . $v);")
        before = Detector([base]).detect_source(src)
        assert len(before) == 1  # unknown helper: candidate reported
        extended = extend_config(base, sanitizers={"escape"})
        after = Detector([extended]).detect_source(src)
        assert after == []  # configured as sanitizer: no report

    def test_extend_is_pure(self):
        base = wape_registry().get("sqli").config
        extend_config(base, sanitizers={"x"}, entry_points={"_ENV"})
        assert "x" not in base.sanitizers
        assert "_ENV" not in base.entry_points
