"""The scan pipeline: engine fusion, parallel scheduler, result cache.

The contract under test (ISSUE 1): fusing every sub-module and weapon
into one engine, fanning files out over worker processes, and serving
unchanged files from the on-disk cache must never change *what* is
detected — only how fast.  Candidate sets are compared by
``CandidateVulnerability.key()`` throughout.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.pipeline import (
    CRASH_ERROR,
    ConfigGroup,
    FusedDetector,
    ResultCache,
    ScanScheduler,
    config_fingerprint,
    split_rfi_lfi,
)
from repro.corpus import VULNERABLE_WEBAPPS, materialize_package
from repro.corpus.wordpress import VULNERABLE_PLUGINS
from repro.php import parse
from repro.tool import Wap21, Wape
from repro.tool.cli import main as cli_main
from repro.analysis.options import ScanOptions


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def armed_wape():
    return Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])


@pytest.fixture(scope="module")
def corpus_tree(tmp_path_factory):
    """A small mixed tree: two web apps + one WordPress plugin."""
    root = tmp_path_factory.mktemp("scan_corpus")
    for profile in VULNERABLE_WEBAPPS[:2]:
        materialize_package(profile, str(root))
    materialize_package(VULNERABLE_PLUGINS[0], str(root))
    return str(root)


def legacy_detect(tool, source: str, filename: str):
    """The pre-fusion path: one engine traversal per sub-module/weapon."""
    candidates = []
    program = parse(source, filename)
    for sub in tool.submodules.values():
        if sub.detector is None:
            continue
        candidates.extend(
            sub.refine(sub.detector.detect_program(program, filename)))
    for weapon in tool.weapons:
        candidates.extend(weapon.detector.detect_program(program, filename))
    seen: set[tuple] = set()
    unique = []
    for cand in candidates:
        if cand.key() not in seen:
            seen.add(cand.key())
            unique.append(cand)
    return unique


def keys_of(report):
    return sorted(o.candidate.key() for o in report.outcomes)


# ---------------------------------------------------------------------------
# engine fusion
# ---------------------------------------------------------------------------

class TestFusedDetector:
    def test_identical_to_per_submodule_path_on_corpus(
            self, armed_wape, corpus_tree):
        """Fusion must not change the candidate set, file by file."""
        paths = ScanScheduler.discover(corpus_tree)
        assert len(paths) > 10
        for path in paths:
            with open(path, encoding="utf-8", errors="replace") as f:
                source = f.read()
            fused = {c.key() for c in
                     armed_wape.fused_detector.detect_source(source, path)}
            legacy = {c.key() for c in
                      legacy_detect(armed_wape, source, path)}
            assert fused == legacy, path

    def test_identical_for_wap21(self, corpus_tree):
        tool = Wap21()
        for path in ScanScheduler.discover(corpus_tree):
            with open(path, encoding="utf-8", errors="replace") as f:
                source = f.read()
            fused = {c.key() for c in
                     tool.fused_detector.detect_source(source, path)}
            legacy = {c.key() for c in legacy_detect(tool, source, path)}
            assert fused == legacy, path

    def test_group_scoped_sources_do_not_leak(self):
        """A source function one group declares must not feed another
        group's sinks — exactly the per-submodule isolation."""
        from repro.analysis.model import DetectorConfig, SinkSpec

        a = DetectorConfig(class_id="aa", display_name="A",
                           entry_points=frozenset({"_GET"}),
                           source_functions=frozenset({"read_a"}),
                           sinks=(SinkSpec("sink_a"),))
        b = DetectorConfig(class_id="bb", display_name="B",
                           entry_points=frozenset({"_GET"}),
                           sinks=(SinkSpec("sink_b"),))
        fused = FusedDetector([ConfigGroup("ga", (a,)),
                               ConfigGroup("gb", (b,))])
        source = ("<?php $x = read_a();\n"
                  "sink_a($x);\n"
                  "sink_b($x);\n"
                  "sink_b($_GET['q']);\n")
        found = fused.detect_source(source, "t.php")
        by_class = {c.vuln_class for c in found}
        # read_a() reaches sink_a (group A) and the shared $_GET reaches
        # sink_b, but read_a() -> sink_b must NOT fire: group B never
        # declared that source.
        assert by_class == {"aa", "bb"}
        assert not any(c.vuln_class == "bb" and "read_a" in c.entry_point
                       for c in found)

    def test_rfi_lfi_split_preserved(self):
        """The RCE sub-module's shape refinement survives fusion."""
        tool = Wape()
        source = "<?php include('modules/' . $_GET['page'] . '.php');"
        found = tool.fused_detector.detect_source(source, "inc.php")
        assert any(c.vuln_class == "lfi" for c in found)
        assert not any(c.vuln_class == "rfi" for c in found)

    def test_split_rfi_lfi_noop_on_other_classes(self):
        tool = Wape()
        cands = tool.fused_detector.detect_source(
            "<?php mysql_query($_GET['q']);", "q.php")
        assert [split_rfi_lfi(c) for c in cands] == cands

    def test_empty_groups(self):
        assert FusedDetector([]).detect_source("<?php echo 1;") == []


# ---------------------------------------------------------------------------
# scheduler: parallelism, determinism, fault isolation
# ---------------------------------------------------------------------------

class TestScanScheduler:
    def test_parallel_equals_sequential(self, armed_wape, corpus_tree):
        seq = armed_wape.analyze_tree(corpus_tree, ScanOptions(jobs=1))
        par = armed_wape.analyze_tree(corpus_tree, ScanOptions(jobs=4))
        assert keys_of(seq) == keys_of(par)
        # deterministic ordering: same files in the same walk order
        assert [f.filename for f in seq.files] == \
               [f.filename for f in par.files]

    def test_syntax_error_file_does_not_stop_the_scan(
            self, armed_wape, tmp_path):
        (tmp_path / "good.php").write_text(
            "<?php mysql_query($_GET['q']);")
        # sink + source markers keep the broken file past the relevance
        # prefilter (a marker-free file would be skipped unparsed)
        (tmp_path / "broken.php").write_text("<?php echo $_GET if ( { {{")
        (tmp_path / "other.php").write_text(
            "<?php echo $_GET['x'];")
        for jobs in (1, 2):
            report = armed_wape.analyze_tree(str(tmp_path), ScanOptions(jobs=jobs))
            by_name = {os.path.basename(f.filename): f
                       for f in report.files}
            assert set(by_name) == {"good.php", "broken.php", "other.php"}
            assert by_name["broken.php"].parse_error
            assert by_name["good.php"].outcomes
            assert by_name["other.php"].outcomes

    @pytest.mark.slow
    def test_worker_crash_becomes_parse_error(
            self, armed_wape, tmp_path, monkeypatch):
        """A file that kills its worker is isolated and reported, and the
        rest of the tree still gets analyzed."""
        from repro.analysis import pipeline

        (tmp_path / "a.php").write_text("<?php mysql_query($_GET['q']);")
        (tmp_path / "kill.php").write_text("<?php /* CRASH-ME */ echo $_GET['k'];")
        (tmp_path / "z.php").write_text("<?php echo $_GET['x'];")
        monkeypatch.setenv(pipeline._CRASH_ENV, "CRASH-ME")
        report = armed_wape.analyze_tree(str(tmp_path), ScanOptions(jobs=2))
        by_name = {os.path.basename(f.filename): f for f in report.files}
        assert by_name["kill.php"].parse_error == CRASH_ERROR
        assert by_name["a.php"].outcomes
        assert by_name["z.php"].outcomes

    def test_discover_is_sorted_and_php_only(self, tmp_path):
        (tmp_path / "b").mkdir()
        (tmp_path / "a.php").write_text("<?php")
        (tmp_path / "b" / "c.PHP").write_text("<?php")
        (tmp_path / "notes.txt").write_text("no")
        found = ScanScheduler.discover(str(tmp_path))
        assert [os.path.basename(p) for p in found] == ["a.php", "c.PHP"]


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_warm_rescan_hits_for_every_file(self, armed_wape, corpus_tree,
                                             tmp_path):
        cache = str(tmp_path / "cache")
        cold = armed_wape.analyze_tree(corpus_tree, ScanOptions(jobs=1, cache_dir=cache))

        scheduler = ScanScheduler(armed_wape._config_groups(), tool_version=armed_wape.version, options=ScanOptions(jobs=1, cache_dir=cache))
        results = scheduler.scan_tree(corpus_tree)
        # every file the prefilter let through is a hit; skipped files
        # never enter (or probe) the cache in either run
        assert scheduler.prefilter_stats is not None
        assert scheduler.cache.hits == \
            scheduler.prefilter_stats.sink_bearing
        assert scheduler.cache.misses == 0

        warm = armed_wape.analyze_tree(corpus_tree, ScanOptions(jobs=1, cache_dir=cache))
        assert keys_of(cold) == keys_of(warm)

    def test_content_change_invalidates_only_that_file(
            self, armed_wape, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "one.php").write_text("<?php mysql_query($_GET['a']);")
        (tree / "two.php").write_text("<?php echo 'static';")
        cache = str(tmp_path / "cache")
        armed_wape.analyze_tree(str(tree), ScanOptions(jobs=1, cache_dir=cache))

        (tree / "two.php").write_text("<?php echo $_GET['b'];")
        scheduler = ScanScheduler(armed_wape._config_groups(), tool_version=armed_wape.version, options=ScanOptions(jobs=1, cache_dir=cache))
        results = scheduler.scan_tree(str(tree))
        assert scheduler.cache.hits == 1    # one.php unchanged
        assert scheduler.cache.misses == 1  # two.php re-analyzed
        two = next(r for r in results if r.filename.endswith("two.php"))
        assert two.candidates  # the edit is picked up, not served stale

    def test_renamed_file_hits_and_is_reattributed(self, armed_wape,
                                                   tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "old.php").write_text("<?php mysql_query($_GET['a']);")
        cache = str(tmp_path / "cache")
        armed_wape.analyze_tree(str(tree), ScanOptions(jobs=1, cache_dir=cache))

        (tree / "old.php").rename(tree / "new.php")
        scheduler = ScanScheduler(armed_wape._config_groups(), tool_version=armed_wape.version, options=ScanOptions(jobs=1, cache_dir=cache))
        results = scheduler.scan_tree(str(tree))
        assert scheduler.cache.hits == 1
        assert results[0].filename.endswith("new.php")
        assert all(c.filename.endswith("new.php")
                   for c in results[0].candidates)

    def test_sanitizer_config_invalidates(self, tmp_path):
        """Feeding an extra sanitizer (§V-A) must miss the old cache."""
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "app.php").write_text(
            "<?php mysql_query(escape($_GET['q']));")
        cache = str(tmp_path / "cache")

        plain = Wape()
        plain.analyze_tree(str(tree), ScanOptions(jobs=1, cache_dir=cache))
        hardened = Wape(extra_sanitizers={"sqli": {"escape"}})
        scheduler = ScanScheduler(hardened._config_groups(), tool_version=hardened.version, options=ScanOptions(jobs=1, cache_dir=cache))
        results = scheduler.scan_tree(str(tree))
        assert scheduler.cache.hits == 0
        assert scheduler.cache.misses == 1
        assert results[0].candidates == []  # escape() now sanitizes

    def test_armed_weapon_invalidates(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "app.php").write_text("<?php echo 1;")
        cache = str(tmp_path / "cache")
        Wape().analyze_tree(str(tree), ScanOptions(jobs=1, cache_dir=cache))

        armed = Wape(weapon_flags=["-nosqli"])
        scheduler = ScanScheduler(armed._config_groups(), tool_version=armed.version, options=ScanOptions(jobs=1, cache_dir=cache))
        scheduler.scan_tree(str(tree))
        assert scheduler.cache.hits == 0

    def test_fingerprint_sensitivity(self):
        wape = Wape()
        base = config_fingerprint(wape._config_groups(), "v1")
        assert base == config_fingerprint(wape._config_groups(), "v1")
        assert base != config_fingerprint(wape._config_groups(), "v2")
        assert base != config_fingerprint(
            Wape(weapon_flags=["-hei"])._config_groups(), "v1")
        assert base != config_fingerprint(
            Wape(extra_sanitizers={"sqli": {"esc"}})._config_groups(),
            "v1")

    def test_corrupt_entry_is_a_miss(self, armed_wape, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "a.php").write_text("<?php mysql_query($_GET['q']);")
        cache = str(tmp_path / "cache")
        first = armed_wape.analyze_tree(str(tree), ScanOptions(jobs=1, cache_dir=cache))

        # truncate every cache entry on disk
        for dirpath, _dirs, files in os.walk(cache):
            for name in files:
                with open(os.path.join(dirpath, name), "wb") as f:
                    f.write(b"\x80garbage")
        again = armed_wape.analyze_tree(str(tree), ScanOptions(jobs=1, cache_dir=cache))
        assert keys_of(first) == keys_of(again)

    def test_cache_roundtrip_unit(self, tmp_path):
        from repro.analysis.detector import FileResult

        cache = ResultCache(str(tmp_path), "f" * 64)
        digest = ResultCache.content_hash(b"<?php echo 1;")
        assert cache.get(digest, "x.php") is None
        cache.put(digest, FileResult(filename="x.php", lines_of_code=3))
        hit = cache.get(digest, "y.php")
        assert hit is not None
        assert hit.filename == "y.php"
        assert hit.lines_of_code == 3


# ---------------------------------------------------------------------------
# CLI + timing surface
# ---------------------------------------------------------------------------

class TestPipelineCli:
    @pytest.fixture()
    def tree(self, tmp_path):
        (tmp_path / "a.php").write_text("<?php mysql_query($_GET['q']);")
        (tmp_path / "b.php").write_text("<?php echo 'static';")
        return str(tmp_path)

    def test_jobs_and_cache_flags(self, tree, tmp_path, capsys):
        cache = str(tmp_path / "cli-cache")
        code = cli_main(["--jobs", "2", "--cache-dir", cache,
                         "--json", tree])
        assert code == 1  # vulnerability found
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["real_vulnerabilities"] >= 1
        assert os.path.isdir(cache)

        # warm run through the CLI: same verdicts, served from cache
        code = cli_main(["--jobs", "1", "--cache-dir", cache,
                         "--json", tree])
        warm = json.loads(capsys.readouterr().out)
        assert code == 1
        assert warm["summary"]["real_vulnerabilities"] == \
               data["summary"]["real_vulnerabilities"]

    def test_no_cache_flag(self, tree, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        code = cli_main(["--no-cache", "--jobs", "1", "--quiet", tree])
        assert code == 1
        assert not (tmp_path / "xdg").exists()

    def test_default_cache_respects_xdg(self, tree, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert cli_main(["--jobs", "1", "--quiet", tree]) == 1
        assert (tmp_path / "xdg" / "wape").is_dir()

    def test_per_file_seconds_are_real(self, armed_wape, tree):
        """No more elapsed/len(files) smearing: timings are per file and
        every analyzed file carries its own measurement."""
        report = armed_wape.analyze_tree(tree, ScanOptions(jobs=1))
        assert all(f.seconds >= 0 for f in report.files)
        assert report.total_seconds > 0
        payload = report.to_dict()
        assert all("seconds" in f for f in payload["files"])

    def test_project_mode_timing_not_smeared(self, armed_wape, tmp_path):
        (tmp_path / "lib.php").write_text(
            "<?php function go($q) { mysql_query($q); }")
        (tmp_path / "index.php").write_text("<?php go($_GET['q']);")
        report = armed_wape.analyze_project(str(tmp_path))
        assert report.total_seconds > 0
        # the parse-heavy files carry nonzero time; equality across all
        # files (the old elapsed/n bug) would be a coincidence
        timed = [f.seconds for f in report.files]
        assert any(t > 0 for t in timed)
