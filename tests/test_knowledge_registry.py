"""Tests for whole-registry knowledge-base export/import (§III-A)."""

import pytest

from repro.analysis import load_registry, save_registry
from repro.exceptions import KnowledgeBaseError
from repro.tool import Wape
from repro.vulnerabilities import wape_registry


class TestRegistryRoundTrip:
    def test_full_round_trip(self, tmp_path):
        original = wape_registry(include_weapons=False)
        save_registry(original, str(tmp_path))
        loaded = load_registry(str(tmp_path))
        assert len(loaded) == len(original)
        for info in original:
            twin = loaded.get(info.class_id)
            assert twin.display_name == info.display_name
            assert twin.table_label == info.table_label
            assert twin.submodule == info.submodule
            assert twin.origin == info.origin
            assert twin.fix_id == info.fix_id
            assert twin.report_group == info.report_group
            assert twin.malicious_chars == info.malicious_chars
            assert set(twin.config.sinks) == set(info.config.sinks)
            assert twin.config.sanitizers == info.config.sanitizers
            assert twin.config.entry_points == info.config.entry_points
            assert twin.config.source_functions == \
                info.config.source_functions

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(KnowledgeBaseError):
            load_registry(str(tmp_path / "nope"))

    def test_tool_runs_from_exported_kb(self, tmp_path):
        save_registry(wape_registry(include_weapons=False), str(tmp_path))
        tool = Wape(class_registry=load_registry(str(tmp_path)))
        report = tool.analyze_source(
            "<?php mysql_query($_GET['q']); echo $_GET['m'];")
        classes = sorted(o.vuln_class for o in report.outcomes)
        assert classes == ["sqli", "xss"]

    def test_edited_kb_changes_behavior(self, tmp_path):
        """The §III-A property: edit a text file, no recompilation."""
        save_registry(wape_registry(include_weapons=False), str(tmp_path))
        # add a custom sanitizer line to sqli's san file
        san = tmp_path / "sqli" / "san.txt"
        san.write_text(san.read_text() + "escape\n")
        tool = Wape(class_registry=load_registry(str(tmp_path)))
        report = tool.analyze_source(
            "<?php $v = escape($_GET['x']); mysql_query('q' . $v);")
        assert report.outcomes == []

    def test_new_class_from_text_files_alone(self, tmp_path):
        """Create a brand-new class by writing text files only."""
        save_registry(wape_registry(include_weapons=False), str(tmp_path))
        cls_dir = tmp_path / "logi"
        cls_dir.mkdir()
        (cls_dir / "meta.txt").write_text(
            "class_id = logi\ndisplay_name = Log injection\n"
            "table_label = LOGI\nsubmodule = query_injection\n"
            "origin = wape-submodule\nfix_id = san_hei\n")
        (cls_dir / "ep.txt").write_text("$_GET\n$_POST\n")
        (cls_dir / "ss.txt").write_text("error_log:0\n")
        (cls_dir / "san.txt").write_text("")
        tool = Wape(class_registry=load_registry(str(tmp_path)))
        report = tool.analyze_source("<?php error_log($_GET['m']);")
        assert [o.vuln_class for o in report.outcomes] == ["logi"]
