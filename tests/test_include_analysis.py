"""Whole-project analysis through the include graph (ISSUE 3 tentpole).

Taint entering in one file must reach sinks in another when the files are
linked by a statically resolvable ``include``/``require``; unresolvable
(dynamic) targets fall back to per-file analysis without error; the
result cache treats a file's include closure as part of its identity.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.includes import (
    IncludeGraph,
    IncludeResolver,
    build_include_graph,
)
from repro.analysis.pipeline import ScanScheduler
from repro.php import parse
from repro.tool import Wape
from repro.analysis.options import ScanOptions


def write_tree(tmp_path, files: dict[str, str]) -> str:
    for name, text in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return str(tmp_path)


def xss_in(report, filename: str):
    return [o for o in report.outcomes
            if o.vuln_class == "xss"
            and o.candidate.filename.endswith(filename)]


# ---------------------------------------------------------------------------
# resolver
# ---------------------------------------------------------------------------

class TestIncludeResolver:
    def include_expr(self, snippet: str):
        program = parse(f"<?php include {snippet};", "t.php")
        return program.body[0].expr.expr  # the Include node's target

    def resolver(self, tmp_path, files):
        write_tree(tmp_path, files)
        return IncludeResolver(
            [str(tmp_path / name) for name in files])

    def test_literal_relative_path(self, tmp_path):
        r = self.resolver(tmp_path, {"a.php": "", "lib/b.php": ""})
        got = r.resolve(self.include_expr("'lib/b.php'"),
                        str(tmp_path / "a.php"))
        assert got == str(tmp_path / "lib" / "b.php")

    def test_dir_constant_concat(self, tmp_path):
        r = self.resolver(tmp_path, {"a.php": "", "lib/b.php": ""})
        got = r.resolve(self.include_expr("__DIR__ . '/lib/b.php'"),
                        str(tmp_path / "a.php"))
        assert got == str(tmp_path / "lib" / "b.php")

    def test_dirname_file_concat(self, tmp_path):
        r = self.resolver(tmp_path, {"a.php": "", "lib/b.php": ""})
        got = r.resolve(
            self.include_expr("dirname(__FILE__) . '/lib/b.php'"),
            str(tmp_path / "a.php"))
        assert got == str(tmp_path / "lib" / "b.php")

    def test_unique_basename_fallback(self, tmp_path):
        r = self.resolver(tmp_path, {"pages/a.php": "", "lib/util.php": ""})
        got = r.resolve(self.include_expr("'../nonexistent/util.php'"),
                        str(tmp_path / "pages" / "a.php"))
        assert got == str(tmp_path / "lib" / "util.php")

    def test_ambiguous_basename_unresolved(self, tmp_path):
        r = self.resolver(tmp_path, {
            "a.php": "", "x/util.php": "", "y/util.php": ""})
        got = r.resolve(self.include_expr("'missing/util.php'"),
                        str(tmp_path / "a.php"))
        assert got is None

    def test_dynamic_target_unresolved(self, tmp_path):
        r = self.resolver(tmp_path, {"a.php": "", "b.php": ""})
        assert r.resolve(self.include_expr("$page"),
                         str(tmp_path / "a.php")) is None
        assert r.resolve(self.include_expr("'tpl/' . $_GET['t']"),
                         str(tmp_path / "a.php")) is None

    def test_build_counts_and_edges(self, tmp_path):
        root = write_tree(tmp_path, {
            "main.php": "<?php require 'lib.php'; include $dyn;",
            "lib.php": "<?php function f() { return 1; }",
        })
        graph = build_include_graph(
            [os.path.join(root, "main.php"), os.path.join(root, "lib.php")])
        main = os.path.join(root, "main.php")
        assert graph.deps[main] == (os.path.join(root, "lib.php"),)
        assert graph.resolved[main] == 1
        assert graph.unresolved[main] == 1


# ---------------------------------------------------------------------------
# graph
# ---------------------------------------------------------------------------

class TestIncludeGraph:
    def test_closure_is_transitive_and_cycle_safe(self):
        graph = IncludeGraph(deps={
            "a": ("b",), "b": ("c",), "c": ("a",)})
        assert graph.closure("a") == ("b", "c")
        assert graph.closure("c") == ("a", "b")

    def test_components_group_linked_files(self):
        graph = IncludeGraph(deps={"a": ("b",), "c": ("d",)})
        groups = graph.components(["a", "b", "c", "d", "e"])
        assert groups == [["a", "b"], ["c", "d"], ["e"]]


# ---------------------------------------------------------------------------
# cross-file taint
# ---------------------------------------------------------------------------

class TestCrossFileTaint:
    TAINTED = {
        "lib.php": ("<?php function getq() { return $_GET['q']; } ?>"),
        "main.php": ("<?php include 'lib.php';\n"
                     "echo getq(); ?>"),
    }

    def test_included_source_function_flags_xss(self, tmp_path):
        root = write_tree(tmp_path, self.TAINTED)
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        hits = xss_in(report, "main.php")
        assert hits, "cross-file flow not detected"

    def test_provenance_spans_both_files(self, tmp_path):
        root = write_tree(tmp_path, self.TAINTED)
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        cand = xss_in(report, "main.php")[0].candidate
        files = {s.file for s in cand.path if s.file}
        assert any(f.endswith("lib.php") for f in files)
        # the source hop is attributed to the included file
        source = next(s for s in cand.path if s.kind == "source")
        assert source.file.endswith("lib.php")

    def test_included_sanitizer_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "lib.php": ("<?php function getq() "
                        "{ return htmlentities($_GET['q']); } ?>"),
            "main.php": "<?php include 'lib.php'; echo getq(); ?>",
        })
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        assert not xss_in(report, "main.php")

    def test_propagated_global_state(self, tmp_path):
        root = write_tree(tmp_path, {
            "glob.php": "<?php $v = $_POST['x']; ?>",
            "use.php": "<?php require 'glob.php'; echo $v; ?>",
        })
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        assert xss_in(report, "use.php")

    def test_include_once_cycle_terminates(self, tmp_path):
        root = write_tree(tmp_path, {
            "a.php": ("<?php include_once 'b.php';\n"
                      "$t = $_GET['t']; ?>"),
            "b.php": ("<?php include_once 'a.php';\n"
                      "echo $t; ?>"),
        })
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        # analysis must terminate; b.php sees a.php's tainted global
        assert xss_in(report, "b.php")

    def test_unresolvable_dynamic_include_falls_back(self, tmp_path):
        root = write_tree(tmp_path, {
            "main.php": ("<?php include $_GET['page'];\n"
                         "echo $_GET['q']; ?>"),
        })
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        # no crash, the per-file flows still reported, counted unresolved
        assert xss_in(report, "main.php")
        entry = report.files[0]
        assert entry.resolved_includes == 0
        assert entry.unresolved_includes == 1

    def test_no_includes_disables_cross_file(self, tmp_path):
        root = write_tree(tmp_path, self.TAINTED)
        on = Wape().analyze_tree(root, ScanOptions(jobs=1))
        off = Wape().analyze_tree(root, ScanOptions(jobs=1, includes=False))
        assert xss_in(on, "main.php")
        assert not xss_in(off, "main.php")

    def test_parallel_matches_sequential(self, tmp_path):
        root = write_tree(tmp_path, {
            **self.TAINTED,
            "glob.php": "<?php $v = $_POST['x']; ?>",
            "use.php": "<?php require 'glob.php'; echo $v; ?>",
            "plain.php": "<?php echo $_GET['z']; ?>",
        })
        seq = Wape().analyze_tree(root, ScanOptions(jobs=1))
        par = Wape().analyze_tree(root, ScanOptions(jobs=3))
        assert sorted(o.candidate.key() for o in seq.outcomes) \
            == sorted(o.candidate.key() for o in par.outcomes)


# ---------------------------------------------------------------------------
# cache interaction
# ---------------------------------------------------------------------------

class TestIncludeCacheInvalidation:
    def test_edit_to_included_file_invalidates_includer(self, tmp_path):
        tree = tmp_path / "tree"
        root = write_tree(tree, {
            "lib.php": "<?php function getq() { return 'safe'; } ?>",
            "main.php": "<?php include 'lib.php'; echo getq(); ?>",
        })
        cache = str(tmp_path / "cache")
        tool = Wape()
        first = tool.analyze_tree(root, ScanOptions(jobs=1, cache_dir=cache))
        assert not xss_in(first, "main.php")

        # the edited dependency now returns attacker input: main.php must
        # be re-analyzed even though its own bytes did not change
        (tree / "lib.php").write_text(
            "<?php function getq() { return $_GET['q']; } ?>")
        scheduler = ScanScheduler(tool._config_groups(), tool_version=tool.version, options=ScanOptions(jobs=1, cache_dir=cache))
        results = scheduler.scan_tree(root)
        main = next(r for r in results if r.filename.endswith("main.php"))
        assert main.candidates, "stale cache served after include edit"
        second = tool.analyze_tree(root, ScanOptions(jobs=1, cache_dir=cache))
        assert xss_in(second, "main.php")

    def test_unrelated_file_still_hits(self, tmp_path):
        tree = tmp_path / "tree"
        root = write_tree(tree, {
            "lib.php": "<?php function getq() { return 'safe'; } ?>",
            "main.php": "<?php include 'lib.php'; echo getq(); ?>",
            # other.php mentions a source so the prefilter analyzes
            # (and caches) it; a marker-free file would be skipped
            # outright and never enter the cache at all
            "other.php": "<?php echo $_GET['other']; ?>",
        })
        cache = str(tmp_path / "cache")
        tool = Wape()
        tool.analyze_tree(root, ScanOptions(jobs=1, cache_dir=cache))

        (tree / "lib.php").write_text(
            "<?php function getq() { return $_GET['q']; } ?>")
        scheduler = ScanScheduler(tool._config_groups(), tool_version=tool.version, options=ScanOptions(jobs=1, cache_dir=cache))
        scheduler.scan_tree(root)
        # other.php has no include edge to lib.php: still served cached
        assert scheduler.cache.hits >= 1
        # main.php misses (its closure changed); lib.php is dep-only
        # under the prefilter — parsed lazily for its summary, not a
        # scan unit of its own
        assert scheduler.cache.misses >= 1


# ---------------------------------------------------------------------------
# report surface
# ---------------------------------------------------------------------------

class TestReportSurface:
    def test_json_report_carries_include_counters_and_hop_files(
            self, tmp_path):
        root = write_tree(tmp_path, TestCrossFileTaint.TAINTED)
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        data = report.to_dict()
        assert data["summary"]["resolved_includes"] == 1
        assert data["summary"]["unresolved_includes"] == 0
        main = next(f for f in data["files"]
                    if f["path"].endswith("main.php"))
        hop_files = [s["file"] for finding in main["findings"]
                     for s in finding["path"] if "file" in s]
        assert any(f.endswith("lib.php") for f in hop_files)

    def test_stats_footer_counts(self, tmp_path):
        from repro.telemetry import Telemetry
        from repro.telemetry.stats import build_scan_stats

        root = write_tree(tmp_path, TestCrossFileTaint.TAINTED)
        telemetry = Telemetry(enabled=True)
        report = Wape().analyze_tree(root, ScanOptions(jobs=1, telemetry=telemetry))
        assert report.stats is not None
        assert report.stats.resolved_includes == 1
        assert "includes: 1 resolved" in report.stats.render()

    def test_explain_provenance_marks_foreign_hops(self, tmp_path):
        from repro.telemetry.provenance import build_provenance

        root = write_tree(tmp_path, TestCrossFileTaint.TAINTED)
        report = Wape().analyze_tree(root, ScanOptions(jobs=1))
        outcome = xss_in(report, "main.php")[0]
        prov = build_provenance(outcome.candidate, outcome.prediction)
        foreign = [e for e in prov.events if e.file]
        assert foreign and foreign[0].file.endswith("lib.php")
        assert "lib.php" in prov.render()
