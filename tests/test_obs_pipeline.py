"""Cross-process observability: worker log segments and crash events.

The structured log rides the same seam as spans and counters: workers
buffer records in segment mode, stamp their pid on drain, and the parent
folds the segments into its sink at chunk join. These tests prove the
merged file tells one coherent story — every record carries the scan's
run id, worker events carry the producing pid, and a worker crash (the
``REPRO_PIPELINE_CRASH_MARKER`` seam) surfaces as ``worker_crash``/
``worker_retry`` events in the same log.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import pipeline
from repro.analysis.options import ScanOptions
from repro.obs import JsonlLogger
from repro.tool.wap import Wape

RUN_ID = "run-obs-test-0001"


@pytest.fixture(scope="module")
def tool():
    return Wape()


def _write_app(root, n_files: int) -> None:
    for i in range(n_files):
        (root / f"page{i}.php").write_text(
            "<?php\n"
            f"$q{i} = $_GET['q{i}'];\n"
            f"mysql_query(\"SELECT {i} FROM t WHERE a = '$q{i}'\");\n")


def _scan_logged(tool, root, tmp_path, jobs: int) -> list[dict]:
    path = tmp_path / "scan.jsonl"
    log = JsonlLogger(path=str(path), run_id=RUN_ID)
    try:
        tool.analyze_tree(str(root), ScanOptions(
            jobs=jobs, log=log, run_id=RUN_ID))
    finally:
        log.close()
    return [json.loads(line)
            for line in path.read_text().splitlines()]


@pytest.mark.slow
class TestWorkerLogMerging:
    def test_parallel_scan_merges_worker_segments(self, tool, tmp_path):
        # enough tiny files that both workers get chunks with certainty
        app = tmp_path / "app"
        app.mkdir()
        _write_app(app, n_files=48)
        records = _scan_logged(tool, app, tmp_path, jobs=2)

        events = [r["event"] for r in records]
        assert events[0] == "scan_start" and events[-1] == "scan_done"
        assert all(r["run_id"] == RUN_ID for r in records)

        chunks = [r for r in records if r["event"] == "chunk_scanned"]
        assert chunks and all(isinstance(r.get("worker"), int)
                              for r in chunks)
        assert len({r["worker"] for r in chunks}) >= 2
        assert sum(r["files"] for r in chunks) == 48

    def test_worker_crash_lands_in_the_merged_log(self, tool, tmp_path,
                                                  monkeypatch):
        app = tmp_path / "app"
        app.mkdir()
        _write_app(app, n_files=4)
        (app / "kill.php").write_text("<?php /* DIE-NOW */ echo $_GET['k'];")
        monkeypatch.setenv(pipeline._CRASH_ENV, "DIE-NOW")
        records = _scan_logged(tool, app, tmp_path, jobs=2)

        crashes = [r for r in records if r["event"] == "worker_crash"]
        retries = [r for r in records if r["event"] == "worker_retry"]
        assert crashes and "kill.php" in crashes[0]["file"]
        assert crashes[0]["level"] == "error"
        assert crashes[0]["run_id"] == RUN_ID
        assert retries and "kill.php" in retries[0]["file"]
        # the scan itself still completes and says so
        assert records[-1]["event"] == "scan_done"
        assert records[-1]["crashes"] >= 1
