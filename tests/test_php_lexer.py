"""Unit tests for the PHP lexer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PhpSyntaxError
from repro.php.lexer import tokenize
from repro.php.tokens import TokenType as T


def types(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [(t.type, t.value) for t in tokenize(source)]


class TestHtmlMode:
    def test_pure_html(self):
        toks = tokenize("<html><body>hi</body></html>")
        assert [t.type for t in toks] == [T.INLINE_HTML, T.EOF]
        assert toks[0].value == "<html><body>hi</body></html>"

    def test_html_then_php(self):
        toks = tokenize("<p><?php echo 1; ?></p>")
        assert [t.type for t in toks] == [
            T.INLINE_HTML, T.OPEN_TAG, T.KW_ECHO, T.INT, T.SEMI,
            T.CLOSE_TAG, T.INLINE_HTML, T.EOF]

    def test_short_echo_tag(self):
        toks = tokenize("<?= $x ?>")
        assert toks[0].type is T.OPEN_TAG
        assert toks[1].type is T.KW_ECHO
        assert toks[2].type is T.VARIABLE

    def test_close_tag_eats_single_newline(self):
        toks = tokenize("<?php ?>\nrest")
        html = [t for t in toks if t.type is T.INLINE_HTML]
        assert html[0].value == "rest"

    def test_empty_source(self):
        assert types("") == [T.EOF]


class TestVariablesAndIdents:
    def test_variable(self):
        toks = tokenize("<?php $foo;")
        assert (toks[1].type, toks[1].value) == (T.VARIABLE, "foo")

    def test_superglobal(self):
        toks = tokenize("<?php $_GET;")
        assert toks[1].value == "_GET"

    def test_keywords_case_insensitive(self):
        assert types("<?php IF WHILE FuncTion")[1:4] == [
            T.KW_IF, T.KW_WHILE, T.KW_FUNCTION]

    def test_keyword_value_preserved(self):
        toks = tokenize("<?php FuncTion")
        assert toks[1].value == "FuncTion"

    def test_die_is_exit(self):
        assert types("<?php die;")[1] is T.KW_EXIT

    def test_plain_ident(self):
        toks = tokenize("<?php my_function")
        assert (toks[1].type, toks[1].value) == (T.IDENT, "my_function")


class TestNumbers:
    @pytest.mark.parametrize("literal,type_", [
        ("42", T.INT), ("0", T.INT), ("0x1F", T.INT), ("0b101", T.INT),
        ("1.5", T.FLOAT), (".5", T.FLOAT), ("1e3", T.FLOAT),
        ("1.5e-3", T.FLOAT),
    ])
    def test_number_kinds(self, literal, type_):
        toks = tokenize(f"<?php {literal};")
        assert toks[1].type is type_
        assert toks[1].value == literal


class TestStrings:
    def test_single_quoted_escapes(self):
        toks = tokenize(r"<?php 'it\'s \\ \n';")
        assert toks[1].type is T.SQ_STRING
        assert toks[1].value == "it's \\ \\n"

    def test_double_quoted_raw(self):
        toks = tokenize(r'<?php "a $x b\n";')
        assert toks[1].type is T.DQ_STRING
        assert toks[1].value == r"a $x b\n"

    def test_backtick(self):
        toks = tokenize("<?php `ls $dir`;")
        assert toks[1].type is T.BACKTICK
        assert toks[1].value == "ls $dir"

    def test_heredoc(self):
        src = "<?php $s = <<<EOT\nhello $name\nEOT;\n"
        toks = tokenize(src)
        here = [t for t in toks if t.type is T.HEREDOC]
        assert here[0].value == "hello $name"

    def test_nowdoc(self):
        src = "<?php $s = <<<'EOT'\nno $interp\nEOT;\n"
        toks = tokenize(src)
        now = [t for t in toks if t.type is T.NOWDOC]
        assert now[0].value == "no $interp"

    def test_unterminated_string_raises(self):
        with pytest.raises(PhpSyntaxError):
            tokenize("<?php 'oops")

    def test_unterminated_dq_raises(self):
        with pytest.raises(PhpSyntaxError):
            tokenize('<?php "oops')


class TestComments:
    def test_line_comment(self):
        assert types("<?php // nope\n1;")[1] is T.INT

    def test_hash_comment(self):
        assert types("<?php # nope\n1;")[1] is T.INT

    def test_block_comment(self):
        assert types("<?php /* x\ny */ 1;")[1] is T.INT

    def test_line_comment_ends_at_close_tag(self):
        toks = tokenize("<?php // comment ?>html")
        assert T.CLOSE_TAG in [t.type for t in toks]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(PhpSyntaxError):
            tokenize("<?php /* never ends")


class TestOperators:
    @pytest.mark.parametrize("op,type_", [
        ("===", T.IDENTICAL), ("!==", T.NOT_IDENTICAL), ("<=>", T.SPACESHIP),
        ("??", T.COALESCE), ("??=", T.COALESCE_ASSIGN), ("->", T.ARROW),
        ("=>", T.DOUBLE_ARROW), ("::", T.DOUBLE_COLON), (".=", T.CONCAT_ASSIGN),
        ("**", T.POW), ("<<", T.SHL), ("...", T.ELLIPSIS),
    ])
    def test_multichar(self, op, type_):
        assert types(f"<?php $a {op} $b")[2] is type_

    def test_maximal_munch(self):
        # "===" must not lex as "==", "="
        assert types("<?php 1 === 2")[2] is T.IDENTICAL

    def test_cast(self):
        toks = tokenize("<?php (int)$x; (STRING) $y;")
        casts = [t for t in toks if t.type is T.CAST]
        assert [c.value for c in casts] == ["int", "string"]

    def test_parens_not_cast(self):
        # (foo) is not a cast: foo is not a cast type
        toks = tokenize("<?php (foo)")
        assert toks[1].type is T.LPAREN

    def test_unknown_char_raises(self):
        with pytest.raises(PhpSyntaxError):
            tokenize("<?php \x01")


class TestPositions:
    def test_line_col_tracking(self):
        toks = tokenize("<?php\n  $x = 1;")
        var = [t for t in toks if t.type is T.VARIABLE][0]
        assert (var.line, var.col) == (2, 3)

    def test_multiline_string_positions(self):
        toks = tokenize('<?php "a\nb"; $y;')
        var = [t for t in toks if t.type is T.VARIABLE][0]
        assert var.line == 2


class TestLexerProperties:
    @given(st.text(alphabet=st.characters(codec="utf-8",
                                          exclude_characters="\x00"),
                   max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_html_mode_never_crashes(self, text):
        """Arbitrary text without <? is one INLINE_HTML token (or empty)."""
        if "<?" in text:
            return
        toks = tokenize(text)
        assert toks[-1].type is T.EOF

    @given(st.lists(st.sampled_from(
        ["$a", "1", "'s'", "+", "-", "==", "(", ")", ";", "if", "echo",
         "foo", "->", "[", "]", ",", "."]), max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_token_soup_lexes(self, pieces):
        """Any whitespace-joined soup of valid lexemes lexes cleanly."""
        source = "<?php " + " ".join(pieces)
        toks = tokenize(source)
        assert toks[-1].type is T.EOF
        # every non-structural token came from our soup
        assert len(toks) >= 2
