"""Tests for the weapon framework: specs, generator, bundles, builtins."""

import pytest

from repro.exceptions import WeaponConfigError
from repro.corrector.templates import (
    TEMPLATE_PHP_SANITIZATION,
    TEMPLATE_USER_SANITIZATION,
    TEMPLATE_USER_VALIDATION,
)
from repro.mining.extraction import DynamicSymptoms
from repro.weapons import (
    WeaponClassSpec,
    WeaponRegistry,
    WeaponSpec,
    builtin_weapons,
    generate_weapon,
    hei_spec,
    load_weapon,
    nosqli_spec,
    save_weapon,
    wpsqli_spec,
)


def simple_spec(**overrides):
    base = dict(
        name="testw",
        flag="-testw",
        classes=(WeaponClassSpec("testc", "Test class",
                                 ("dangerous_sink:0",)),),
        fix_template=TEMPLATE_USER_VALIDATION,
        fix_malicious_chars=("'",),
    )
    base.update(overrides)
    return WeaponSpec(**base)


class TestSpecValidation:
    def test_valid_spec_passes(self):
        simple_spec().validate()

    @pytest.mark.parametrize("overrides", [
        {"name": "Bad Name"},
        {"name": ""},
        {"flag": "noflag"},
        {"flag": "-NOT"},
        {"classes": ()},
        {"classes": (WeaponClassSpec("x", "X", ()),)},  # no sinks
        {"fix_template": "bogus"},
        {"fix_template": TEMPLATE_PHP_SANITIZATION,
         "fix_sanitization_function": None},
        {"fix_template": TEMPLATE_USER_SANITIZATION,
         "fix_malicious_chars": ()},
    ])
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(WeaponConfigError):
            simple_spec(**overrides).validate()

    def test_fix_id_derived_from_name(self):
        assert simple_spec().fix_id == "san_testw"


class TestGenerator:
    def test_weapon_has_three_parts(self):
        weapon = generate_weapon(simple_spec())
        assert weapon.detector is not None
        assert weapon.fix.fix_id == "san_testw"
        assert weapon.dynamic_symptoms is not None

    def test_generated_detector_works(self):
        weapon = generate_weapon(simple_spec())
        cands = weapon.detector.detect_source(
            "<?php dangerous_sink($_GET['x']);")
        assert len(cands) == 1
        assert cands[0].vuln_class == "testc"

    def test_weapon_with_sanitizer(self):
        spec = simple_spec(sanitizers=("make_safe",))
        weapon = generate_weapon(spec)
        cands = weapon.detector.detect_source(
            "<?php dangerous_sink(make_safe($_GET['x']));")
        assert cands == []

    def test_own_fix_recognized_as_sanitizer(self):
        weapon = generate_weapon(simple_spec())
        cands = weapon.detector.detect_source(
            "<?php dangerous_sink(san_testw($_GET['x']));")
        assert cands == []

    def test_weapon_with_extra_entry_point(self):
        spec = simple_spec(entry_points=("_ENV",))
        weapon = generate_weapon(spec)
        cands = weapon.detector.detect_source(
            "<?php dangerous_sink($_ENV['x']);")
        assert len(cands) == 1

    def test_weapon_with_source_function(self):
        spec = simple_spec(source_functions=("read_input",))
        weapon = generate_weapon(spec)
        cands = weapon.detector.detect_source(
            "<?php $v = read_input(); dangerous_sink($v);")
        assert len(cands) == 1

    def test_multi_class_weapon(self):
        spec = simple_spec(classes=(
            WeaponClassSpec("c1", "C1", ("sink_one:0",)),
            WeaponClassSpec("c2", "C2", ("sink_two",)),
        ))
        weapon = generate_weapon(spec)
        assert weapon.class_ids == ["c1", "c2"]
        cands = weapon.detector.detect_source(
            "<?php sink_one($_GET['a']); sink_two($_GET['b']);")
        assert sorted(c.vuln_class for c in cands) == ["c1", "c2"]

    def test_invalid_spec_raises_at_generation(self):
        with pytest.raises(WeaponConfigError):
            generate_weapon(simple_spec(flag="bad"))


class TestBundles:
    def test_save_load_round_trip(self, tmp_path):
        spec = simple_spec(
            sanitizers=("cleaner",),
            dynamic_symptoms=DynamicSymptoms(
                mapping={"val_num": "is_numeric"},
                whitelists=frozenset({"allow"}),
                blacklists=frozenset({"deny"})),
        )
        weapon = generate_weapon(spec)
        directory = str(tmp_path / "testw")
        save_weapon(weapon, directory)
        loaded = load_weapon(directory)
        assert loaded.name == weapon.name
        assert loaded.flag == weapon.flag
        assert loaded.class_ids == weapon.class_ids
        assert loaded.spec.sanitizers == ("cleaner",)
        assert loaded.dynamic_symptoms.mapping == {"val_num": "is_numeric"}
        assert loaded.dynamic_symptoms.whitelists == frozenset({"allow"})

    def test_loaded_weapon_detects(self, tmp_path):
        weapon = generate_weapon(simple_spec())
        directory = str(tmp_path / "w")
        save_weapon(weapon, directory)
        loaded = load_weapon(directory)
        cands = loaded.detector.detect_source(
            "<?php dangerous_sink($_POST['y']);")
        assert len(cands) == 1

    def test_builtin_weapons_round_trip(self, tmp_path):
        for weapon in builtin_weapons():
            directory = str(tmp_path / weapon.name)
            save_weapon(weapon, directory)
            loaded = load_weapon(directory)
            assert loaded.class_ids == weapon.class_ids
            assert loaded.fix.helper_code == weapon.fix.helper_code

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(WeaponConfigError):
            load_weapon(str(tmp_path / "nope"))


class TestBuiltinWeapons:
    def test_three_builtins(self):
        weapons = builtin_weapons()
        assert sorted(w.name for w in weapons) == ["hei", "nosqli",
                                                   "wpsqli"]

    def test_nosqli_paper_configuration(self):
        spec = nosqli_spec()
        sink_names = {s.lstrip("->").split("@")[0] for s in
                      spec.classes[0].sinks}
        assert sink_names == {"find", "findone", "findandmodify",
                              "insert", "remove", "save", "execute"}
        assert spec.fix_sanitization_function == "mysql_real_escape_string"
        assert spec.fix_template == TEMPLATE_PHP_SANITIZATION
        assert spec.flag == "-nosqli"

    def test_hei_covers_hi_and_ei(self):
        weapon = generate_weapon(hei_spec())
        assert weapon.class_ids == ["hi", "ei"]
        cands = weapon.detector.detect_source(
            "<?php header('L: ' . $_GET['u']); "
            "mail($_POST['to'], 'subject', 'body');")
        assert sorted(c.vuln_class for c in cands) == ["ei", "hi"]

    def test_hei_fix_uses_user_sanitization(self):
        weapon = generate_weapon(hei_spec())
        assert weapon.fix.fix_id == "san_hei"
        assert "str_replace" in weapon.fix.helper_code

    def test_wpsqli_detects_wpdb_flows(self):
        weapon = generate_weapon(wpsqli_spec())
        cands = weapon.detector.detect_source(
            "<?php $wpdb->query(\"SELECT x FROM p WHERE t = '\" "
            ". $_GET['t'] . \"'\");")
        assert [c.vuln_class for c in cands] == ["wpsqli"]

    def test_wpsqli_prepare_sanitizes(self):
        weapon = generate_weapon(wpsqli_spec())
        cands = weapon.detector.detect_source(
            "<?php $sql = $wpdb->prepare('t=%s', $_GET['t']); "
            "$wpdb->query($sql);")
        assert cands == []

    def test_wpsqli_dynamic_symptoms(self):
        weapon = generate_weapon(wpsqli_spec())
        assert weapon.dynamic_symptoms.resolve("absint") == "intval"
        assert weapon.dynamic_symptoms.resolve("sanitize_text_field") \
            == "preg_replace"

    def test_weapon_configs_match_catalog(self):
        """The generated weapons reproduce the catalog's handwritten
        configurations (sinks and sanitizers)."""
        from repro.vulnerabilities import wape_registry
        registry = wape_registry()
        for weapon in builtin_weapons():
            for config in weapon.configs:
                catalog = registry.get(config.class_id).config
                assert {s.name for s in config.sinks} == \
                    {s.name for s in catalog.sinks}, config.class_id


class TestRegistry:
    def test_with_builtins(self):
        reg = WeaponRegistry.with_builtins()
        assert len(reg) == 3
        assert reg.flags() == ["-hei", "-nosqli", "-wpsqli"]

    def test_lookup_by_flag_and_name(self):
        reg = WeaponRegistry.with_builtins()
        assert reg.by_flag("-nosqli").name == "nosqli"
        assert reg.by_name("hei").flag == "-hei"

    def test_unknown_flag_raises(self):
        reg = WeaponRegistry()
        with pytest.raises(WeaponConfigError):
            reg.by_flag("-nothing")

    def test_duplicate_rejected(self):
        reg = WeaponRegistry.with_builtins()
        with pytest.raises(WeaponConfigError):
            reg.register(generate_weapon(nosqli_spec()))

    def test_register_custom(self):
        reg = WeaponRegistry.with_builtins()
        reg.register(generate_weapon(simple_spec()))
        assert "testw" in reg
        assert "-testw" in reg
