"""Tests for the visitor / tree-walker framework."""

from repro.php import ast, parse
from repro.php.visitor import (
    NodeTransformer,
    NodeVisitor,
    count_nodes,
    find_all,
    walk,
)


def program(body):
    return parse("<?php " + body)


class TestNodeVisitor:
    def test_dispatch_to_named_method(self):
        hits = []

        class CallCollector(NodeVisitor):
            def visit_FunctionCall(self, node):
                hits.append(node.name)
                self.generic_visit(node)

        CallCollector().visit(program("f(g($x)); h();"))
        assert hits == ["f", "g", "h"]

    def test_generic_visit_recurses_everywhere(self):
        seen = []

        class Everything(NodeVisitor):
            def visit_Variable(self, node):
                seen.append(node.name)

        Everything().visit(program(
            "if ($a) { foreach ($b as $c) { echo $c; } }"))
        assert seen == ["a", "b", "c", "c"]

    def test_visitor_return_value(self):
        class Counter(NodeVisitor):
            def visit_Literal(self, node):
                return node.value

        assert Counter().visit(ast.Literal(42, "int")) == 42


class TestNodeTransformer:
    def test_replace_statement_in_list(self):
        class EchoRemover(NodeTransformer):
            def visit_Echo(self, node):
                return None  # drop echos

        tree = program("echo $a; $x = 1; echo $b;")
        EchoRemover().visit(tree)
        kinds = [type(n).__name__ for n in tree.body]
        assert "Echo" not in kinds
        assert "ExpressionStatement" in kinds

    def test_replace_expression_node(self):
        class IntDoubler(NodeTransformer):
            def visit_Literal(self, node):
                if node.kind == "int":
                    return ast.Literal(node.value * 2, "int")
                return node

        tree = program("$x = 21;")
        IntDoubler().visit(tree)
        assign = tree.body[0].expr
        assert assign.value.value == 42

    def test_expand_one_to_many(self):
        class StatementDoubler(NodeTransformer):
            def visit_Echo(self, node):
                return [node, ast.Echo(list(node.exprs))]

        tree = program("echo $a;")
        StatementDoubler().visit(tree)
        assert sum(1 for n in tree.body
                   if isinstance(n, ast.Echo)) == 2


class TestHelpers:
    def test_walk_preorder(self):
        tree = program("$x = f(1);")
        kinds = [type(n).__name__ for n in walk(tree)]
        assert kinds[0] == "Program"
        assert kinds.index("Assign") < kinds.index("FunctionCall")
        assert kinds.index("FunctionCall") < kinds.index("Literal")

    def test_find_all_with_predicate(self):
        tree = program("f(1); g(2); f(3);")
        fs = list(find_all(tree, ast.FunctionCall,
                           lambda n: n.name == "f"))
        assert len(fs) == 2

    def test_count_nodes(self):
        small = count_nodes(program("$x = 1;"))
        bigger = count_nodes(program("$x = 1; $y = f($x) + 2;"))
        assert bigger > small > 1

    def test_children_skip_non_nodes(self):
        decl = program("static $a = 1, $b;").body[0]
        children = list(decl.children())
        # only the default expression is a child node
        assert len(children) == 1
        assert isinstance(children[0], ast.Literal)

    def test_if_children_include_elifs(self):
        tree = program("if ($a) { f(); } elseif ($b) { g(); } "
                       "else { h(); }")
        names = {n.name for n in find_all(tree, ast.FunctionCall)}
        assert names == {"f", "g", "h"}
