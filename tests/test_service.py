"""End-to-end scan daemon tests: HTTP protocol, warm re-scans, oracle."""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.analysis.options import ScanOptions
from repro.exceptions import ServiceError
from repro.service import ScanService, ServiceClient
from repro.tool.report import SCHEMA_VERSION

DEMO_APP = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "demo_app")


@pytest.fixture(scope="module")
def service():
    """One daemon (ephemeral port) shared by the module's tests."""
    svc = ScanService(options=ScanOptions(jobs=1))
    svc.start_background()
    yield svc
    svc.server.shutdown()
    svc.close()


@pytest.fixture(scope="module")
def client(service):
    c = ServiceClient(port=service.port)
    c.wait_ready()
    return c


@pytest.fixture()
def app(tmp_path):
    root = tmp_path / "demo_app"
    shutil.copytree(DEMO_APP, root)
    return str(root)


def finding_set(report_dict):
    """Hashable identity of every finding in a report dict."""
    out = set()
    for entry in report_dict["files"]:
        rel = os.path.relpath(entry["path"], report_dict["target"])
        for finding in entry["findings"]:
            out.add((rel, finding["class"], finding["sink_line"],
                     finding["entry_line"], finding["verdict"]))
    return out


class TestProtocol:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema_version"] == SCHEMA_VERSION
        assert health["version"] == "WAPe"

    def test_scan_roundtrip(self, client, app):
        report = client.scan(app)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["service"]["incremental"] is False
        assert report["service"]["request_id"].startswith("req-")
        assert report["summary"]["real_vulnerabilities"] > 0

    def test_missing_root_field(self, client, service):
        with pytest.raises(ServiceError, match="root"):
            client.scan("")

    def test_nonexistent_root(self, client):
        with pytest.raises(ServiceError, match="not a directory"):
            client.scan("/no/such/dir/anywhere")

    def test_unknown_endpoint(self, client):
        status, raw = client._request("GET", "/v1/nope")
        assert status == 404
        assert "no such endpoint" in json.loads(raw)["error"]

    def test_invalid_json_body(self, client):
        import http.client
        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/scan", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "invalid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_request_ids_are_unique_and_echoed(self, client):
        import http.client
        seen = set()
        for _ in range(3):
            conn = http.client.HTTPConnection(client.host, client.port,
                                              timeout=10)
            try:
                conn.request("GET", "/v1/health")
                response = conn.getresponse()
                response.read()
                seen.add(response.getheader("X-Request-Id"))
            finally:
                conn.close()
        assert len(seen) == 3
        assert all(rid and rid.startswith("req-") for rid in seen)

    def test_metrics_endpoint(self, client, app):
        client.scan(app)
        text = client.metrics_text()
        assert "# TYPE wape_scans_served_cold counter" in text
        assert "wape_scan_seconds_count" in text
        assert "wape_files_scanned" in text  # pipeline metrics flow in


class TestWarmRescans:
    def test_edit_reanalyzes_only_the_closure(self, client, app):
        first = client.scan(app)
        assert first["service"]["incremental"] is False
        dep = os.path.join(app, "includes", "input.php")
        with open(dep, "a", encoding="utf-8") as f:
            f.write("\n<?php // touched ?>\n")
        second = client.scan(app)
        info = second["service"]
        assert info["incremental"] is True
        # feed.php requires includes/input.php: exactly those two rescan
        assert set(info["dirty"]) == {"feed.php",
                                      os.path.join("includes",
                                                   "input.php")}
        assert info["analyzed_files"] == 2
        assert info["reused_files"] == \
            first["summary"]["files"] - 2

    def test_findings_diff_after_edit_is_exactly_the_new_flaw(
            self, client, app):
        base = finding_set(client.scan(app))
        with open(os.path.join(app, "profile.php"), "a",
                  encoding="utf-8") as f:
            f.write("\n<?php echo $_GET['svc_probe']; ?>\n")
        edited = finding_set(client.scan(app))
        assert base - edited == set()
        added = edited - base
        assert {(key[0], key[1]) for key in added} == \
            {("profile.php", "xss")}

    def test_forget_flag_forces_cold_scan(self, client, app):
        client.scan(app)
        report = client.scan(app, forget=True)
        assert report["service"]["incremental"] is False

    def test_timeout_turns_into_504_then_warm_retry(self, client,
                                                    service, app):
        with pytest.raises(ServiceError, match="exceeded"):
            client.scan(app, timeout=1e-6)
        # the timed-out scan kept running and warmed the state
        report = client.scan(app)
        assert report["service"]["incremental"] is True

    def test_queue_full_is_503_not_a_hang(self, service, app):
        svc = ScanService(tool=service.scanner.tool, max_queue=0,
                          options=ScanOptions(jobs=1))
        svc.start_background()
        try:
            c = ServiceClient(port=svc.port)
            c.wait_ready()
            with pytest.raises(ServiceError, match="queue full"):
                c.scan(app)
        finally:
            svc.server.shutdown()
            svc.close()


class TestOracle:
    @pytest.mark.slow
    def test_daemon_and_cli_findings_are_byte_identical(self, client,
                                                        app, capsys):
        """Acceptance oracle: `wape scan --json` == daemon scan."""
        from repro.tool.cli import main as cli_main

        daemon_report = client.scan(app)
        cli_main(["--json", "--jobs", "1", "--no-cache", app])
        cli_report = json.loads(capsys.readouterr().out)

        def canonical(report):
            files = []
            for entry in sorted(report["files"],
                                key=lambda e: e["path"]):
                entry = dict(entry)
                entry.pop("seconds")
                entry["path"] = os.path.relpath(entry["path"],
                                                report["target"])
                files.append(entry)
            return json.dumps(files, sort_keys=True)

        assert canonical(daemon_report) == canonical(cli_report)


class TestServeCommand:
    @pytest.mark.slow
    def test_wape_serve_subprocess_end_to_end(self, app):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                         os.pardir, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            line = proc.stdout.readline()
            assert "listening on http://127.0.0.1:" in line
            port = int(line.rsplit(":", 1)[1])
            client = ServiceClient(port=port)
            client.wait_ready(deadline=30.0)
            report = client.scan(app)
            assert report["summary"]["real_vulnerabilities"] > 0
            assert client.scan(app)["service"]["incremental"] is True
            client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestShutdown:
    def test_shutdown_endpoint_stops_the_daemon(self, service):
        svc = ScanService(tool=service.scanner.tool,
                          options=ScanOptions(jobs=1))
        thread = svc.start_background()
        try:
            c = ServiceClient(port=svc.port)
            c.wait_ready()
            assert c.shutdown() == {"status": "shutting down"}
            thread.join(timeout=10)
            assert not thread.is_alive()
            with pytest.raises(ServiceError, match="cannot reach"):
                c.health()
        finally:
            svc.close()


class TestValidationRegressions:
    def test_bool_timeout_is_rejected_with_400(self, client, app):
        """Regression: ``{"timeout": true}`` passed the numeric check
        (bool subclasses int) and silently became a 1-second timeout."""
        status, raw = client._request(
            "POST", "/v1/scan", {"root": app, "timeout": True})
        assert status == 400
        assert "timeout must be a positive number" in \
            json.loads(raw)["error"]

    def test_non_bool_forget_is_rejected(self, client, app):
        status, raw = client._request(
            "POST", "/v1/scan", {"root": app, "forget": "yes"})
        assert status == 400
        assert "forget must be a boolean" in json.loads(raw)["error"]

    def test_query_string_does_not_404_or_mislabel(self, client):
        """Regression: exact-path dispatch made ``/v1/health?probe=1``
        a 404 and collapsed its metric label into ``other``."""
        def health_count():
            label = ('wape_http_requests_total{endpoint="/v1/health",'
                     'method="GET",status="200"}')
            for line in client.metrics_text().splitlines():
                if line.startswith(label):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        before = health_count()
        status, raw = client._request("GET", "/v1/health?probe=1&x=y")
        assert status == 200
        assert json.loads(raw)["status"] == "ok"
        assert health_count() == before + 1

    def test_non_dict_error_body_raises_service_error(self, client):
        """Regression: a JSON list/string error body crashed the client
        with AttributeError on ``.get`` instead of ServiceError."""
        for body in (b'["boom"]', b'"oops"', b'42'):
            broken = ServiceClient(port=client.port)
            broken._request = lambda *a, _b=body, **k: (500, _b)
            with pytest.raises(ServiceError, match="HTTP 500"):
                broken.health()


class TestStatusVisibility:
    def test_timed_out_scan_stays_in_status_until_done(self, service,
                                                       app):
        """Regression: the 504 path popped the request from
        ``_in_flight`` although the scan keeps running on the worker —
        ``/v1/status`` hid real work."""
        import time as _time
        # enough files that the cold scan comfortably outlives the 504
        for i in range(80):
            shutil.copytree(DEMO_APP, os.path.join(app, f"copy{i}"))
        c = ServiceClient(port=service.port)
        with pytest.raises(ServiceError, match="exceeded"):
            c.scan(app, timeout=1e-6)
        rows = [row for row in c.status()["in_flight"]
                if row["root"] == app]
        assert rows and rows[0]["timed_out"] is True
        deadline = _time.monotonic() + 120
        while _time.monotonic() < deadline:
            if not any(row["root"] == app
                       for row in c.status()["in_flight"]):
                break
            _time.sleep(0.2)
        else:
            pytest.fail("timed-out scan never left /v1/status")


class TestStreaming:
    def test_stream_events_match_blocking_scan(self, client, app):
        blocking = client.scan(app, forget=True)
        client.scan(app)  # ensure warm parity doesn't matter: re-stream
        events = list(client.scan_stream(app))
        assert events[0]["event"] == "scan_started"
        assert events[0]["request_id"].startswith("req-")
        assert events[-1]["event"] == "scan_done"
        files = [e for e in events[1:-1]]
        assert all(e["event"] == "file" for e in files)
        paths = [e["path"] for e in files]
        assert len(paths) == len(set(paths))
        # deterministic discovery order: a re-stream replays it exactly
        replay = [e["path"] for e in client.scan_stream(app)
                  if e["event"] == "file"]
        assert replay == paths
        report = events[-1]["report"]
        assert "files" not in report  # already streamed
        assert report["service"]["files_streamed"] == len(files)
        # findings streamed == findings of a blocking scan
        def stream_findings(file_events):
            out = set()
            for entry in file_events:
                rel = os.path.relpath(entry["path"], app)
                for finding in entry["findings"]:
                    out.add((rel, finding["class"], finding["sink_line"],
                             finding["entry_line"], finding["verdict"]))
            return out
        assert stream_findings(files) == finding_set(blocking)

    def test_stream_validation_errors_are_plain_json(self, client):
        import http.client
        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/scan?stream=1",
                         body=json.dumps({"root": "/no/such/dir"})
                         .encode(),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 404
            assert "not a directory" in \
                json.loads(response.read())["error"]
        finally:
            conn.close()


class TestDeltaAndSarif:
    def test_scan_with_baseline_returns_a_delta(self, client, app):
        baseline = client.scan(app)
        delta = client.scan(app, baseline=baseline)
        from repro.api import FindingsDelta
        assert isinstance(delta, FindingsDelta)
        assert not delta.changed
        assert delta.unchanged
        assert delta.report["service"]["request_id"].startswith("req-")

    def test_baseline_flags_an_injected_sink(self, client, app):
        baseline = client.scan(app)
        with open(os.path.join(app, "contact.php"), "a",
                  encoding="utf-8") as f:
            f.write("\n<?php echo $_GET['svc_injected']; ?>\n")
        delta = client.scan(app, baseline=baseline)
        assert len(delta.new) == 1
        assert delta.new[0]["file"] == "contact.php"
        assert not delta.fixed

    def test_baseline_accepts_a_report_file_path(self, client, app,
                                                 tmp_path):
        baseline = client.scan(app)
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        delta = client.scan(app, baseline=str(path))
        assert not delta.changed

    def test_malformed_baseline_is_a_400(self, client, app):
        with pytest.raises(ServiceError, match="baseline"):
            client.scan(app, baseline={"schema_version": 2})
        with pytest.raises(ServiceError, match="baseline"):
            client.scan(app, baseline={"root": "not-a-report"})

    def test_sarif_format(self, client, app):
        sarif = client.scan_sarif(app)
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert results
        report = client.scan(app)
        assert len(results) == sum(len(e["findings"])
                                   for e in report["files"])

    def test_unknown_format_is_a_400(self, client, app):
        with pytest.raises(ServiceError, match="format"):
            client._json("POST", "/v1/scan?format=yaml", {"root": app})

    def test_stream_rejects_baseline_and_sarif(self, client, app):
        import http.client
        for query, body in (("stream=1&format=sarif", {"root": app}),
                            ("stream=1", {"root": app,
                                          "baseline": {"x": 1}})):
            conn = http.client.HTTPConnection(client.host, client.port,
                                              timeout=10)
            try:
                conn.request("POST", f"/v1/scan?{query}",
                             body=json.dumps(body).encode(),
                             headers={"Content-Type":
                                      "application/json"})
                assert conn.getresponse().status == 400
            finally:
                conn.close()
