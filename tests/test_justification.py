"""Tests for the false-positive justification component (Fig. 3)."""

import pytest

from repro.analysis import generate_detector
from repro.mining import justify, new_predictor

DET = generate_detector("sqli", ["mysql_query:0"])


def analyzed(source):
    cands = DET.detect_source("<?php " + source, "app.php")
    assert len(cands) == 1
    predictor = new_predictor()
    return cands[0], predictor.predict(cands[0])


class TestJustification:
    def test_fp_justification_mentions_symptom(self):
        cand, pred = analyzed(
            "if (is_numeric($_GET['n'])) "
            "{ mysql_query(\"SELECT a FROM t WHERE n = \" "
            ". $_GET['n']); }")
        j = justify(cand, pred)
        assert j.is_false_positive
        text = j.render()
        assert "FALSE POSITIVE" in text
        assert "is_numeric" in text
        assert "type checking" in text
        assert "classifier votes" in text

    def test_guard_line_reported(self):
        cand, pred = analyzed(
            "if (ctype_digit($_GET['n'])) "
            "{ mysql_query('n = ' . $_GET['n']); }")
        j = justify(cand, pred)
        assert "(line 1)" in j.render()

    def test_rv_justification(self):
        cand, pred = analyzed(
            "mysql_query(\"SELECT a FROM t WHERE x = '\" "
            ". $_GET['x'] . \"'\");")
        j = justify(cand, pred)
        assert not j.is_false_positive
        assert "REAL vulnerability" in j.render()

    def test_evidence_structured(self):
        cand, pred = analyzed(
            "if (is_numeric($_GET['n'])) "
            "{ mysql_query(\"SELECT a FROM t WHERE n = \" "
            ". $_GET['n']); }")
        j = justify(cand, pred)
        symptoms = {e[0] for e in j.evidence}
        assert "is_numeric" in symptoms
        categories = {e[2] for e in j.evidence}
        assert "validation" in categories

    def test_sql_evidence_phrasing(self):
        cand, pred = analyzed(
            "if (is_numeric($_GET['n'])) "
            "{ mysql_query(\"SELECT AVG(v) FROM t WHERE n = \" "
            ". $_GET['n']); }")
        text = justify(cand, pred).render()
        assert "query shape" in text

    def test_location_in_header(self):
        cand, pred = analyzed("mysql_query($_GET['q']);")
        text = justify(cand, pred).render()
        assert "app.php:1" in text
        assert "$_GET['q']" in text
